"""Unit tests for Algorithms 2 and 3 (modified LCS)."""


from repro.core.bestring import AxisBEString
from repro.core.construct import encode_picture
from repro.core.lcs import (
    be_lcs_length,
    be_lcs_length_and_string,
    be_lcs_string,
    be_lcs_table,
    print_2d_be_lcs,
)


def axis(text: str) -> AxisBEString:
    return AxisBEString.from_text(text)


class TestTable:
    def test_empty_inputs(self):
        table = be_lcs_table(axis(""), axis(""))
        assert table == [[0]]
        assert be_lcs_length(axis(""), axis("A.b A.e")) == 0

    def test_table_dimensions(self):
        query = axis("E A.b A.e")
        database = axis("A.b E A.e E")
        table = be_lcs_table(query, database)
        assert len(table) == len(query) + 1
        assert all(len(row) == len(database) + 1 for row in table)

    def test_sign_encodes_dummy_tail(self):
        # Matching a lone dummy: the cell is negative but the length is 1.
        table = be_lcs_table(axis("E"), axis("E"))
        assert table[1][1] == -1
        assert be_lcs_length(axis("E"), axis("E")) == 1

    def test_identical_strings_full_length(self, fig1_bestring):
        for string in (fig1_bestring.x, fig1_bestring.y):
            assert be_lcs_length(string, string) == len(string)


class TestDummySuppression:
    def test_consecutive_dummies_never_in_lcs(self):
        # Both strings contain widely separated dummies; a naive LCS would
        # align two of them back to back, the modified LCS must not.
        query = axis("E A.b E A.e E")
        database = axis("E B.b E B.e E")
        lcs = be_lcs_string(query, database)
        assert lcs.dummy_count <= 1
        assert be_lcs_length(query, database) == 1

    def test_dummy_can_separate_two_matched_boundaries(self):
        query = axis("A.b E A.e")
        database = axis("A.b E A.e")
        assert be_lcs_length(query, database) == 3
        assert be_lcs_string(query, database).to_text() == "A.b E A.e"

    def test_lcs_string_never_has_adjacent_dummies(self):
        query = axis("E A.b E B.b E A.e E B.e E")
        database = axis("E B.b E A.b E B.e E A.e E")
        lcs = be_lcs_string(query, database)
        for left, right in zip(lcs.symbols, lcs.symbols[1:]):
            assert not (left.is_dummy and right.is_dummy)


class TestStringReconstruction:
    def test_lcs_is_subsequence_of_both(self, fig1, fig1_bestring):
        query = encode_picture(fig1.subset(["A", "B"]))
        lcs = be_lcs_string(query.x, fig1_bestring.x)

        def is_subsequence(candidate, reference):
            iterator = iter(reference)
            return all(symbol in iterator for symbol in candidate)

        assert is_subsequence(lcs.symbols, query.x.symbols)
        assert is_subsequence(lcs.symbols, fig1_bestring.x.symbols)

    def test_lcs_string_length_matches_reported_length(self, fig1_bestring):
        query = axis("E A.b E B.b E A.e E")
        length, lcs = be_lcs_length_and_string(query, fig1_bestring.x)
        assert len(lcs) == length

    def test_recursive_printer_matches_iterative(self, fig1_bestring):
        query = axis("E A.b C.b E C.e E")
        table = be_lcs_table(query, fig1_bestring.x)
        printed = []
        print_2d_be_lcs(query, table, len(query), len(fig1_bestring.x), printed)
        assert printed == list(be_lcs_string(query, fig1_bestring.x).symbols)

    def test_no_common_symbols_gives_empty_lcs(self):
        assert be_lcs_string(axis("A.b A.e"), axis("B.b B.e")).symbols == ()


class TestOrderSensitivity:
    def test_swapped_objects_score_lower_than_identical(self):
        # Same objects, opposite order along the axis: the LCS can keep only
        # one object's boundaries plus dummies.
        same = axis("E A.b E A.e E B.b E B.e E")
        swapped = axis("E B.b E B.e E A.b E A.e E")
        assert be_lcs_length(same, same) > be_lcs_length(same, swapped)

    def test_partial_query_scores_between_zero_and_full(self, fig1, fig1_bestring):
        full = be_lcs_length(fig1_bestring.x, fig1_bestring.x)
        partial_query = encode_picture(fig1.subset(["A"]))
        partial = be_lcs_length(partial_query.x, fig1_bestring.x)
        assert 0 < partial < full

    def test_lcs_is_symmetric_in_length(self, fig1, office):
        # LCS length must not depend on which operand is the "query".
        a = encode_picture(fig1).x
        b = encode_picture(fig1.subset(["A", "C"])).x
        assert be_lcs_length(a, b) == be_lcs_length(b, a)
