"""Unit tests for Algorithm 1 (Convert-2D-Be-String)."""

import pytest

from repro.core.construct import (
    build_axis_string,
    convert_2d_be_string,
    encode_picture,
    storage_symbol_bounds,
)
from repro.core.errors import EncodingError
from repro.core.symbols import BoundaryKind
from repro.datasets.synthetic import (
    SceneParameters,
    aligned_picture,
    distinct_boundaries_picture,
    random_picture,
    stacked_picture,
)
from repro.geometry.rectangle import Rectangle
from repro.iconic.picture import SymbolicPicture


class TestBuildAxisString:
    def test_empty_axis_is_single_dummy(self):
        assert build_axis_string([], extent=10.0).to_text() == "E"

    def test_single_object_with_free_space(self):
        records = [(2.0, "A", BoundaryKind.BEGIN), (5.0, "A", BoundaryKind.END)]
        assert build_axis_string(records, extent=10.0).to_text() == "E A.b E A.e E"

    def test_single_object_exactly_fitting(self):
        # No edge dummies, but one internal dummy because the two boundaries
        # project to distinct coordinates: the paper's 2n + 1 best case.
        records = [(0.0, "A", BoundaryKind.BEGIN), (10.0, "A", BoundaryKind.END)]
        assert build_axis_string(records, extent=10.0).to_text() == "A.b E A.e"

    def test_coincident_boundaries_need_no_dummy(self):
        records = [
            (0.0, "A", BoundaryKind.BEGIN),
            (5.0, "A", BoundaryKind.END),
            (5.0, "B", BoundaryKind.BEGIN),
            (10.0, "B", BoundaryKind.END),
        ]
        assert build_axis_string(records, extent=10.0).to_text() == "A.b E A.e B.b E B.e"

    def test_out_of_frame_boundary_rejected(self):
        records = [(2.0, "A", BoundaryKind.BEGIN), (12.0, "A", BoundaryKind.END)]
        with pytest.raises(EncodingError):
            build_axis_string(records, extent=10.0)

    def test_non_positive_extent_rejected(self):
        with pytest.raises(EncodingError):
            build_axis_string([], extent=0.0)

    def test_ties_ordered_by_identifier_then_kind(self):
        records = [
            (5.0, "B", BoundaryKind.BEGIN),
            (5.0, "A", BoundaryKind.END),
            (0.0, "A", BoundaryKind.BEGIN),
            (10.0, "B", BoundaryKind.END),
        ]
        assert build_axis_string(records, extent=10.0).to_text() == "A.b E A.e B.b E B.e"


class TestConvert2DBeString:
    def test_parallel_array_form(self):
        bestring = convert_2d_be_string(
            n=2,
            identifiers=["A", "B"],
            x_begin=[0.0, 5.0],
            x_end=[5.0, 10.0],
            y_begin=[0.0, 0.0],
            y_end=[10.0, 10.0],
            x_max=10.0,
            y_max=10.0,
        )
        assert bestring.x.to_text() == "A.b E A.e B.b E B.e"
        assert bestring.y.to_text() == "A.b B.b E A.e B.e"
        bestring.validate()

    def test_array_length_mismatch_rejected(self):
        with pytest.raises(EncodingError):
            convert_2d_be_string(
                n=2,
                identifiers=["A"],
                x_begin=[0.0, 1.0],
                x_end=[2.0, 3.0],
                y_begin=[0.0, 1.0],
                y_end=[2.0, 3.0],
                x_max=10.0,
                y_max=10.0,
            )

    def test_duplicate_identifiers_rejected(self):
        with pytest.raises(EncodingError):
            convert_2d_be_string(
                n=2,
                identifiers=["A", "A"],
                x_begin=[0.0, 1.0],
                x_end=[2.0, 3.0],
                y_begin=[0.0, 1.0],
                y_end=[2.0, 3.0],
                x_max=10.0,
                y_max=10.0,
            )

    def test_inverted_mbr_rejected(self):
        with pytest.raises(EncodingError):
            convert_2d_be_string(
                n=1,
                identifiers=["A"],
                x_begin=[5.0],
                x_end=[2.0],
                y_begin=[0.0],
                y_end=[1.0],
                x_max=10.0,
                y_max=10.0,
            )


class TestEncodePicture:
    def test_encoding_is_always_valid(self, random_scene):
        bestring = encode_picture(random_scene)
        bestring.validate()

    def test_encoding_preserves_object_set(self, office):
        bestring = encode_picture(office)
        assert bestring.object_identifiers == set(office.identifiers)

    def test_empty_picture_unsupported_objects_still_encodes_frame(self):
        picture = SymbolicPicture(width=10.0, height=10.0)
        bestring = encode_picture(picture)
        assert bestring.x.to_text() == "E"
        assert bestring.y.to_text() == "E"

    def test_degenerate_object_begin_before_end(self):
        picture = SymbolicPicture.build(
            width=10, height=10, objects=[("A", Rectangle(3, 3, 3, 3))]
        )
        bestring = encode_picture(picture)
        assert bestring.x.to_text() == "E A.b A.e E"
        bestring.x.validate()


class TestStorageBounds:
    def test_bounds_formula(self):
        assert storage_symbol_bounds(0) == (1, 1)
        assert storage_symbol_bounds(1) == (3, 5)
        assert storage_symbol_bounds(4) == (9, 17)
        with pytest.raises(ValueError):
            storage_symbol_bounds(-1)

    def test_best_case_layout_hits_lower_bound(self):
        for n in (1, 2, 5, 9):
            picture = stacked_picture(n)
            bestring = encode_picture(picture)
            assert len(bestring.x) == 2 * n + 1
            assert len(bestring.y) == 2 * n + 1

    def test_aligned_tiling_needs_no_dummy_at_shared_boundaries(self):
        for n in (2, 5, 9):
            picture = aligned_picture(n)
            bestring = encode_picture(picture)
            # n tiles share n - 1 internal boundaries, so the x axis needs
            # 2n boundary symbols plus n dummies (one per distinct gap).
            assert len(bestring.x) == 3 * n
            assert bestring.x.dummy_count == n

    def test_worst_case_layout_hits_upper_bound(self):
        for n in (1, 2, 5, 9):
            picture = distinct_boundaries_picture(n)
            bestring = encode_picture(picture)
            assert len(bestring.x) == 4 * n + 1
            assert len(bestring.y) == 4 * n + 1

    def test_random_scenes_stay_within_bounds(self):
        parameters = SceneParameters(object_count=12, alignment_probability=0.5)
        for seed in range(20):
            picture = random_picture(seed, parameters)
            bestring = encode_picture(picture)
            lower, upper = storage_symbol_bounds(len(picture))
            assert lower <= len(bestring.x) <= upper
            assert lower <= len(bestring.y) <= upper
