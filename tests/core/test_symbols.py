"""Unit tests for BE-string symbols."""

import pytest

from repro.core.errors import EncodingError
from repro.core.symbols import BoundaryKind, Symbol


class TestConstruction:
    def test_dummy_singleton_properties(self):
        dummy = Symbol.dummy()
        assert dummy.is_dummy
        assert not dummy.is_boundary
        assert not dummy.is_begin
        assert not dummy.is_end

    def test_begin_and_end_constructors(self):
        begin = Symbol.begin("car")
        end = Symbol.end("car")
        assert begin.is_begin and begin.is_boundary
        assert end.is_end and end.is_boundary
        assert begin != end

    def test_partial_symbol_rejected(self):
        with pytest.raises(EncodingError):
            Symbol(identifier="car", kind=None)
        with pytest.raises(EncodingError):
            Symbol(identifier=None, kind=BoundaryKind.BEGIN)

    def test_empty_identifier_rejected(self):
        with pytest.raises(EncodingError):
            Symbol.begin("")

    def test_symbols_are_hashable_and_comparable(self):
        assert Symbol.begin("A") == Symbol.begin("A")
        assert len({Symbol.begin("A"), Symbol.begin("A"), Symbol.end("A")}) == 2


class TestBoundaryKind:
    def test_opposite(self):
        assert BoundaryKind.BEGIN.opposite is BoundaryKind.END
        assert BoundaryKind.END.opposite is BoundaryKind.BEGIN


class TestSwapped:
    def test_swapping_boundary(self):
        assert Symbol.begin("A").swapped() == Symbol.end("A")
        assert Symbol.end("A").swapped() == Symbol.begin("A")

    def test_swapping_dummy_is_noop(self):
        assert Symbol.dummy().swapped() is Symbol.dummy()

    def test_swap_is_involution(self):
        symbol = Symbol.begin("car#2")
        assert symbol.swapped().swapped() == symbol


class TestTextForm:
    def test_to_text(self):
        assert Symbol.dummy().to_text() == "E"
        assert Symbol.begin("A").to_text() == "A.b"
        assert Symbol.end("car#1").to_text() == "car#1.e"

    def test_from_text_roundtrip(self):
        for symbol in (Symbol.dummy(), Symbol.begin("A"), Symbol.end("car#1")):
            assert Symbol.from_text(symbol.to_text()) == symbol

    def test_from_text_identifier_containing_dot(self):
        symbol = Symbol.from_text("image.v2.b")
        assert symbol.identifier == "image.v2"
        assert symbol.is_begin

    def test_from_text_rejects_malformed(self):
        with pytest.raises(EncodingError):
            Symbol.from_text("A")
        with pytest.raises(EncodingError):
            Symbol.from_text("A.x")
