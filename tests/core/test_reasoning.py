"""Unit tests for spatial reasoning over BE-strings."""

import pytest

from repro.core.bestring import AxisBEString
from repro.core.construct import encode_picture
from repro.core.errors import BEStringError
from repro.core.reasoning import (
    axis_relation,
    boundary_ranks,
    disagreeing_pairs,
    pairwise_relations_from_bestring,
    relations_agree,
    relations_compatible,
)
from repro.core.similarity import similarity
from repro.datasets.scenes import office_scene
from repro.datasets.synthetic import SceneParameters, random_picture
from repro.datasets.transforms_gen import scrambled_variant
from repro.geometry.allen import AllenRelation
from repro.geometry.interval import Interval


def axis(text: str) -> AxisBEString:
    return AxisBEString.from_text(text)


class TestBoundaryRanks:
    def test_ranks_increase_across_dummies(self):
        ranks = boundary_ranks(axis("E A.b E A.e B.b E B.e E"))
        assert ranks["A"] == Interval(1.0, 2.0)
        assert ranks["B"] == Interval(2.0, 3.0)

    def test_adjacent_boundaries_share_rank(self):
        ranks = boundary_ranks(axis("A.b A.e"))
        assert ranks["A"].is_degenerate

    def test_unbalanced_string_rejected(self):
        with pytest.raises(BEStringError):
            boundary_ranks(axis("A.b E B.e"))

    def test_duplicate_boundary_rejected(self):
        with pytest.raises(BEStringError):
            boundary_ranks(axis("A.b A.b A.e A.e"))


class TestAxisRelation:
    def test_before_relation(self):
        relation = axis_relation(axis("A.b E A.e E B.b E B.e"), "A", "B")
        assert relation is AllenRelation.BEFORE

    def test_meets_relation(self):
        relation = axis_relation(axis("A.b E A.e B.b E B.e"), "A", "B")
        assert relation is AllenRelation.MEETS

    def test_equals_relation(self):
        relation = axis_relation(axis("A.b B.b E A.e B.e"), "A", "B")
        assert relation is AllenRelation.EQUALS

    def test_unknown_object_rejected(self):
        with pytest.raises(BEStringError):
            axis_relation(axis("A.b A.e"), "A", "Z")


class TestAgainstGeometry:
    """Relations recovered from the string equal the geometric ground truth."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_scenes(self, seed):
        picture = random_picture(
            seed, SceneParameters(object_count=8, alignment_probability=0.5)
        )
        bestring = encode_picture(picture)
        from_string = pairwise_relations_from_bestring(bestring)
        from_geometry = picture.pairwise_relations()
        assert from_string == from_geometry

    def test_office_scene(self, office):
        bestring = encode_picture(office)
        assert pairwise_relations_from_bestring(bestring) == office.pairwise_relations()

    def test_subset_restriction(self, office):
        bestring = encode_picture(office)
        subset = ["desk", "monitor", "phone"]
        relations = pairwise_relations_from_bestring(bestring, subset)
        assert set(relations) == {
            ("desk", "monitor"),
            ("desk", "phone"),
            ("monitor", "phone"),
        }

    def test_unknown_identifier_rejected(self, office):
        bestring = encode_picture(office)
        with pytest.raises(BEStringError):
            pairwise_relations_from_bestring(bestring, ["desk", "spaceship"])


class TestLCSSoundnessClaim:
    """Section 4: pairwise relations of LCS objects are consistent in both images.

    The exact-agreement form of the claim holds when the matched objects have
    identical geometry in both images (self matches and sub-scene matches);
    the order-compatibility form (no inverted boundary orderings) holds for
    arbitrary image pairs because the LCS preserves the order of every matched
    boundary symbol.
    """

    def test_exact_agreement_for_sub_scene_queries(self, office):
        query_picture = office.subset(["desk", "monitor", "phone", "lamp"])
        query_bestring = encode_picture(query_picture)
        database_bestring = encode_picture(office)
        result = similarity(query_bestring, database_bestring)
        matched = result.common_objects
        assert matched == {"desk", "monitor", "phone", "lamp"}
        assert relations_agree(query_bestring, database_bestring, matched)
        assert disagreeing_pairs(query_bestring, database_bestring, matched) == []

    @pytest.mark.parametrize("variant", [1, 2, 3, 6])
    def test_order_compatibility_for_jittered_scenes(self, office, variant):
        database = office_scene(variant)
        query_bestring = encode_picture(office)
        database_bestring = encode_picture(database)
        result = similarity(query_bestring, database_bestring)
        matched = result.common_objects
        if len(matched) >= 2:
            assert relations_compatible(query_bestring, database_bestring, matched)

    def test_order_compatibility_for_scrambled_scene(self, office):
        scrambled = scrambled_variant(office, seed=11)
        query_bestring = encode_picture(office)
        database_bestring = encode_picture(scrambled)
        result = similarity(query_bestring, database_bestring)
        matched = result.common_objects
        if len(matched) >= 2:
            assert relations_compatible(query_bestring, database_bestring, matched)

    def test_compatibility_rejects_unknown_objects(self, office):
        bestring = encode_picture(office)
        with pytest.raises(BEStringError):
            relations_compatible(bestring, bestring, ["desk", "spaceship"])

    def test_disagreeing_pairs_detects_a_flip(self, office):
        # Swap two objects' positions: the pair's relation flips and must be
        # reported when we force-check the full object set.
        flipped = office.remove_icon("phone").remove_icon("lamp")
        flipped = flipped.add_icon("phone", office.icon("lamp").mbr)
        flipped = flipped.add_icon("lamp", office.icon("phone").mbr)
        query_bestring = encode_picture(office)
        database_bestring = encode_picture(flipped)
        pairs = disagreeing_pairs(
            query_bestring, database_bestring, ["phone", "lamp", "desk"]
        )
        assert ("lamp", "phone") in pairs
        assert not relations_agree(query_bestring, database_bestring, ["phone", "lamp"])
