"""The bit-parallel LCS kernel agrees with the reference DP — always.

``be_lcs_length_bitparallel`` re-derives the paper's dummy-suppression rule
from two bit planes (an increment plane and a sign plane), so the one thing
that matters is exact agreement with :func:`repro.core.lcs.be_lcs_table` on
every input — valid BE-strings *and* adversarial symbol sequences (long
dummy runs, unbalanced boundaries) the encoder would never produce.  The
fuzz classes sweep both, plus the two-row :func:`be_lcs_length` against the
full table it replaced.  See ``docs/kernels.md`` for the encoding.
"""

import random

import pytest

from repro.core.bestring import AxisBEString
from repro.core.construct import encode_picture
from repro.core.lcs import be_lcs_length, be_lcs_table
from repro.core.lcskernel import be_lcs_length_bitparallel
from repro.core.symbols import BoundaryKind, Symbol
from repro.datasets.synthetic import SceneParameters, random_pictures

DUMMY = Symbol()


def axis(text: str) -> AxisBEString:
    return AxisBEString.from_text(text)


class RawAxis:
    """AxisBEString stand-in that skips validation (adversarial strings)."""

    def __init__(self, symbols):
        self.symbols = tuple(symbols)

    def __len__(self):
        return len(self.symbols)


def table_length(query, database) -> int:
    """The constrained LCS length straight off the signed reference table."""
    return abs(be_lcs_table(query, database)[len(query)][len(database)])


def random_axis(rng, length, labels, dummy_bias):
    kinds = list(BoundaryKind)
    symbols = [
        DUMMY
        if rng.random() < dummy_bias
        else Symbol(rng.choice(labels), rng.choice(kinds))
        for _ in range(length)
    ]
    return RawAxis(symbols)


class TestKnownValues:
    def test_empty_inputs(self):
        assert be_lcs_length_bitparallel(axis(""), axis("")) == 0
        assert be_lcs_length_bitparallel(axis(""), axis("A.b A.e")) == 0
        assert be_lcs_length_bitparallel(axis("A.b A.e"), axis("")) == 0

    def test_identical_string_is_full_length(self):
        string = axis("A.b E B.b A.e E B.e")
        assert be_lcs_length_bitparallel(string, string) == len(string)

    def test_lone_dummy_matches(self):
        assert be_lcs_length_bitparallel(axis("E"), axis("E")) == 1

    def test_dummy_suppression_blocks_adjacent_dummies(self):
        # A naive LCS aligns two of the separated dummies back to back; the
        # modified LCS must not, leaving a single-dummy LCS.
        query = axis("E A.b E A.e E")
        database = axis("E B.b E B.e E")
        assert be_lcs_length_bitparallel(query, database) == 1

    def test_dummy_between_matched_boundaries_counts(self):
        query = axis("A.b E A.e")
        assert be_lcs_length_bitparallel(query, query) == 3

    def test_disjoint_alphabets_share_only_dummies(self):
        query = axis("A.b A.e E B.b B.e")
        database = axis("C.b C.e E D.b D.e")
        assert be_lcs_length_bitparallel(query, database) == table_length(
            query, database
        )

    def test_matches_reference_on_encoded_scenes(self, scene_collection):
        encoded = [encode_picture(picture) for picture in scene_collection]
        query = encoded[0]
        for candidate in encoded:
            for query_axis, database_axis in (
                (query.x, candidate.x),
                (query.y, candidate.y),
            ):
                assert be_lcs_length_bitparallel(
                    query_axis, database_axis
                ) == table_length(query_axis, database_axis)


class TestFuzzAgainstReferenceTable:
    """Randomized agreement with the signed DP, per adversarial regime."""

    @pytest.mark.parametrize(
        ("seed", "trials", "max_len", "labels", "dummy_bias"),
        [
            pytest.param(1, 300, 12, ("A",), 0.6, id="small-dense"),
            pytest.param(2, 200, 25, ("A", "B", "C"), 0.5, id="medium"),
            pytest.param(3, 80, 60, ("A", "B", "C", "D", "E2", "F"), 0.45, id="large"),
            pytest.param(4, 200, 30, ("A", "B"), 0.85, id="dummy-runs"),
            pytest.param(5, 200, 30, ("A",), 0.95, id="nearly-all-dummies"),
            pytest.param(6, 200, 30, ("A", "B", "C"), 0.0, id="no-dummies"),
        ],
    )
    def test_adversarial_symbol_sequences(
        self, seed, trials, max_len, labels, dummy_bias
    ):
        rng = random.Random(seed)
        for _ in range(trials):
            query = random_axis(rng, rng.randrange(0, max_len), labels, dummy_bias)
            database = random_axis(rng, rng.randrange(0, max_len), labels, dummy_bias)
            assert be_lcs_length_bitparallel(query, database) == table_length(
                query, database
            ), (
                f"kernel diverged on q={[s.to_text() for s in query.symbols]} "
                f"d={[s.to_text() for s in database.symbols]}"
            )

    def test_random_scenes(self):
        # Valid BE-strings from the synthetic generator: the realistic regime.
        parameters = SceneParameters(
            object_count=8,
            labels=tuple(f"label{index:02d}" for index in range(10)),
            label_choice="random",
        )
        pictures = random_pictures(20, seed=77, parameters=parameters)
        encoded = [encode_picture(picture) for picture in pictures]
        for query in encoded[:6]:
            for candidate in encoded:
                for query_axis, database_axis in (
                    (query.x, candidate.x),
                    (query.y, candidate.y),
                ):
                    assert be_lcs_length_bitparallel(
                        query_axis, database_axis
                    ) == table_length(query_axis, database_axis)


class TestTwoRowReferenceLength:
    """The O(n)-memory ``be_lcs_length`` still equals the full table."""

    def test_adversarial_fuzz(self):
        rng = random.Random(11)
        for _ in range(300):
            query = random_axis(rng, rng.randrange(0, 25), ("A", "B"), 0.5)
            database = random_axis(rng, rng.randrange(0, 25), ("A", "B"), 0.5)
            assert be_lcs_length(query, database) == table_length(query, database)

    def test_encoded_scenes(self, scene_collection):
        encoded = [encode_picture(picture) for picture in scene_collection]
        for query in encoded[:3]:
            for candidate in encoded:
                assert be_lcs_length(query.x, candidate.x) == table_length(
                    query.x, candidate.x
                )
