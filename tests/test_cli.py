"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.index.storage import picture_to_json_text


@pytest.fixture
def scene_files(tmp_path, office, traffic, landscape):
    paths = {}
    for picture in (office, traffic, landscape):
        path = tmp_path / f"{picture.name}.json"
        path.write_text(picture_to_json_text(picture), encoding="utf-8")
        paths[picture.name] = path
    return paths


@pytest.fixture
def database_file(tmp_path, scene_files):
    database_path = tmp_path / "db.json"
    code = main(["build", str(database_path)] + [str(path) for path in scene_files.values()])
    assert code == 0
    return database_path


class TestEncode:
    def test_encode_prints_both_axes(self, scene_files, capsys):
        office_path = next(path for name, path in scene_files.items() if "office" in name)
        assert main(["encode", str(office_path)]) == 0
        output = capsys.readouterr().out
        assert "x:" in output and "y:" in output and "desk" in output

    def test_encode_missing_file(self, tmp_path, capsys):
        assert main(["encode", str(tmp_path / "missing.json")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_encode_malformed_file(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["encode", str(path)]) == 2
        assert "malformed" in capsys.readouterr().err


class TestBuildAndSearch:
    def test_build_writes_database(self, database_file, capsys):
        payload = json.loads(database_file.read_text())
        assert len(payload["images"]) == 3

    def test_search_finds_identical_scene(self, database_file, scene_files, capsys):
        office_path = next(path for name, path in scene_files.items() if "office" in name)
        assert main(["search", str(database_file), str(office_path), "--top", "2"]) == 0
        output = capsys.readouterr().out
        assert "office-000" in output.splitlines()[0]
        assert "score=1.000" in output

    def test_search_with_flags(self, database_file, scene_files, capsys):
        traffic_path = next(path for name, path in scene_files.items() if "traffic" in name)
        assert main(
            ["search", str(database_file), str(traffic_path), "--invariant", "--no-filters"]
        ) == 0
        assert "traffic-000" in capsys.readouterr().out

    def test_search_missing_database(self, tmp_path, scene_files, capsys):
        office_path = next(iter(scene_files.values()))
        assert main(["search", str(tmp_path / "none.json"), str(office_path)]) == 2

    def test_search_kernel_and_strategy_flags_match_default(
        self, database_file, scene_files, capsys
    ):
        office_path = next(path for name, path in scene_files.items() if "office" in name)
        assert main(["search", str(database_file), str(office_path), "--jsonl"]) == 0
        expected = capsys.readouterr().out
        assert main(
            [
                "search",
                str(database_file),
                str(office_path),
                "--jsonl",
                "--kernel",
                "bitparallel",
                "--strategy",
                "anytime",
            ]
        ) == 0
        assert capsys.readouterr().out == expected

    def test_explain_reports_execution_plan(self, database_file, scene_files, capsys):
        office_path = next(path for name, path in scene_files.items() if "office" in name)
        assert main(
            [
                "explain",
                str(database_file),
                str(office_path),
                "--kernel",
                "bitparallel",
                "--strategy",
                "anytime",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "kernel=bitparallel" in output

    def test_search_rejects_unknown_kernel(self, database_file, scene_files, capsys):
        office_path = next(iter(scene_files.values()))
        with pytest.raises(SystemExit):
            main(["search", str(database_file), str(office_path), "--kernel", "simd"])


class TestBatchSearch:
    @pytest.fixture
    def query_file(self, tmp_path, office, traffic):
        path = tmp_path / "queries.jsonl"
        lines = [
            json.dumps(office.to_dict()),
            "",  # blank lines are skipped
            json.dumps({"scene": traffic.to_dict(), "top": 1, "invariant": True}),
            json.dumps(office.to_dict()),  # duplicate: must be deduplicated
        ]
        path.write_text("\n".join(lines), encoding="utf-8")
        return path

    def test_batch_search_runs_all_queries(self, database_file, query_file, capsys):
        code = main(
            ["batch-search", str(database_file), str(query_file), "--top", "2", "--workers", "2"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "[0]" in output and "[1]" in output and "[2]" in output
        assert output.count("office-000") >= 2
        assert "3 queries -> 2 unique evaluations" in output

    def test_batch_search_matches_serial_search(self, database_file, query_file, scene_files, capsys):
        office_path = next(path for name, path in scene_files.items() if "office" in name)
        assert main(["search", str(database_file), str(office_path), "--top", "2"]) == 0
        serial_lines = [
            line.strip() for line in capsys.readouterr().out.splitlines() if line.strip()
        ]
        assert main(
            ["batch-search", str(database_file), str(query_file), "--top", "2"]
        ) == 0
        batch_output = capsys.readouterr().out
        for line in serial_lines:
            assert line in batch_output

    def test_batch_search_missing_query_file(self, database_file, tmp_path, capsys):
        assert main(["batch-search", str(database_file), str(tmp_path / "none.jsonl")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_batch_search_malformed_line(self, database_file, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"not a scene": true}\n', encoding="utf-8")
        assert main(["batch-search", str(database_file), str(path)]) == 2
        assert "malformed scene" in capsys.readouterr().err

    def test_batch_search_rejects_bad_override_types(self, database_file, tmp_path, office, capsys):
        path = tmp_path / "typed.jsonl"
        path.write_text(
            json.dumps({"scene": office.to_dict(), "top": "five"}) + "\n", encoding="utf-8"
        )
        assert main(["batch-search", str(database_file), str(path)]) == 2
        assert "'top' must be a JSON integer" in capsys.readouterr().err
        # JSON strings must not be truthed into invariant mode.
        path.write_text(
            json.dumps({"scene": office.to_dict(), "invariant": "false"}) + "\n",
            encoding="utf-8",
        )
        assert main(["batch-search", str(database_file), str(path)]) == 2
        assert "'invariant' must be a JSON boolean" in capsys.readouterr().err

    def test_batch_search_null_top_means_unlimited(self, database_file, tmp_path, office, capsys):
        path = tmp_path / "nolimit.jsonl"
        path.write_text(
            json.dumps({"scene": office.to_dict(), "top": None}) + "\n", encoding="utf-8"
        )
        assert main(
            ["batch-search", str(database_file), str(path), "--top", "1", "--no-filters"]
        ) == 0
        assert "3 results" in capsys.readouterr().out  # null overrides --top 1

    def test_batch_search_invalid_workers(self, database_file, query_file, capsys):
        assert main(
            ["batch-search", str(database_file), str(query_file), "--workers", "0"]
        ) == 2
        assert "workers must be at least 1" in capsys.readouterr().err

    def test_batch_search_empty_file(self, database_file, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("\n\n", encoding="utf-8")
        assert main(["batch-search", str(database_file), str(path)]) == 2
        assert "no queries" in capsys.readouterr().err


class TestSearchExtensions:
    def test_search_jsonl_output(self, database_file, scene_files, capsys):
        office_path = next(path for name, path in scene_files.items() if "office" in name)
        assert main(
            ["search", str(database_file), str(office_path), "--top", "2", "--jsonl"]
        ) == 0
        lines = [line for line in capsys.readouterr().out.splitlines() if line.strip()]
        payloads = [json.loads(line) for line in lines]
        assert payloads[0]["image_id"] == "office-000"
        assert payloads[0]["rank"] == 1 and "transformation" in payloads[0]

    def test_search_with_where_filter(self, database_file, scene_files, capsys):
        office_path = next(path for name, path in scene_files.items() if "office" in name)
        assert main(
            [
                "search", str(database_file), str(office_path),
                "--where", "monitor above desk",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "office-000" in output
        assert "traffic" not in output and "landscape" not in output

    def test_search_fuzzy_where_grades_every_image(self, database_file, capsys):
        assert main(
            [
                "search", str(database_file),
                "--where", "monitor above desk", "--fuzzy",
            ]
        ) == 0
        output = capsys.readouterr().out
        # Graded mode keeps the near-misses: every stored image is ranked.
        assert "office-000" in output
        assert "traffic-000" in output and "landscape-000" in output

    def test_search_boolean_grammar(self, database_file, capsys):
        assert main(
            [
                "search", str(database_file),
                "--where", "not (monitor above desk) or car left-of tree",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "traffic-000" in output

    def test_search_fuzzy_without_where_fails(self, database_file, scene_files, capsys):
        office_path = next(path for name, path in scene_files.items() if "office" in name)
        assert main(["search", str(database_file), str(office_path), "--fuzzy"]) == 2
        assert "--fuzzy requires" in capsys.readouterr().err

    def test_search_malformed_where_names_the_token(self, database_file, capsys):
        assert main(["search", str(database_file), "--where", "car banana tree"]) == 2
        assert "banana" in capsys.readouterr().err

    def test_search_min_score(self, database_file, scene_files, capsys):
        office_path = next(path for name, path in scene_files.items() if "office" in name)
        assert main(
            ["search", str(database_file), str(office_path), "--min-score", "0.99"]
        ) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        assert len(lines) == 1 and "office-000" in lines[0]

    def test_search_without_scene_or_where_fails(self, database_file, capsys):
        assert main(["search", str(database_file)]) == 2
        assert "at least one clause" in capsys.readouterr().err

    def test_search_jsonl_empty_keeps_stdout_clean(self, database_file, scene_files, capsys):
        office_path = next(path for name, path in scene_files.items() if "office" in name)
        code = main(
            ["search", str(database_file), str(office_path),
             "--min-score", "1.5", "--jsonl"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert captured.out == ""  # no plain-text noise in the JSONL stream
        assert "no matching images" in captured.err


class TestExplain:
    def test_explain_similarity_query(self, database_file, scene_files, capsys):
        office_path = next(path for name, path in scene_files.items() if "office" in name)
        assert main(["explain", str(database_file), str(office_path), "--top", "2"]) == 0
        output = capsys.readouterr().out
        assert output.startswith("query: similar_to(")
        assert "plan:" in output and "stored" in output
        assert "stage=" in output and "cache=miss" in output
        assert "lcs=" in output

    def test_explain_predicate_query(self, database_file, capsys):
        assert main(
            ["explain", str(database_file), "--where", "monitor above desk"]
        ) == 0
        output = capsys.readouterr().out
        assert "predicate-evaluated" in output
        assert "holds=[monitor above desk]" in output

    def test_explain_bad_predicate(self, database_file, capsys):
        assert main(
            ["explain", str(database_file), "--where", "monitor floats-over desk"]
        ) == 2
        assert "unknown relation" in capsys.readouterr().err

    def test_explain_no_matches_exit_code(self, database_file, tmp_path, capsys):
        # A scene whose labels appear nowhere: the shortlist admits nothing.
        from repro.geometry.rectangle import Rectangle
        from repro.iconic.picture import SymbolicPicture
        from repro.index.storage import picture_to_json_text

        alien = SymbolicPicture.build(
            width=10, height=10, objects=[("alien", Rectangle(1, 1, 3, 3))], name="alien"
        )
        path = tmp_path / "alien.json"
        path.write_text(picture_to_json_text(alien), encoding="utf-8")
        assert main(["explain", str(database_file), str(path)]) == 1
        assert "no matching images" in capsys.readouterr().out


class TestRelationsShowDemo:
    def test_relations_query(self, database_file, capsys):
        code = main(
            ["relations", str(database_file), "monitor above desk and phone right-of monitor"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert output.splitlines()[0].startswith("office-000")
        assert "2/2" in output

    def test_relations_bad_query(self, database_file, capsys):
        assert main(["relations", str(database_file), "monitor hovering-near desk"]) == 2
        assert "unknown relation" in capsys.readouterr().err

    def test_show_renders_ascii(self, database_file, capsys):
        assert main(["show", str(database_file), "landscape-000", "--columns", "40"]) == 0
        output = capsys.readouterr().out
        assert output.startswith("+")
        assert "legend" in output

    def test_show_unknown_image(self, database_file, capsys):
        assert main(["show", str(database_file), "nope"]) == 2

    def test_demo_end_to_end(self, tmp_path, capsys):
        target = tmp_path / "demo.json"
        assert main(["demo", "--output", str(target)]) == 0
        output = capsys.readouterr().out
        assert target.exists()
        assert "office-000" in output
        assert "predicates hold" in output


class TestConvertInfoAndFormats:
    def test_convert_json_to_sqlite_and_back(self, database_file, tmp_path, capsys):
        sqlite_path = tmp_path / "db.sqlite"
        assert main(["convert", str(database_file), str(sqlite_path)]) == 0
        assert "converted 3 images to sqlite" in capsys.readouterr().out
        roundtrip = tmp_path / "back.json"
        assert main(["convert", str(sqlite_path), str(roundtrip)]) == 0
        payload = json.loads(roundtrip.read_text())
        assert len(payload["images"]) == 3

    def test_convert_explicit_target_format(self, database_file, tmp_path, capsys):
        # Destination suffix says JSON, --to overrides it to sharded.
        target = tmp_path / "still-a-directory.json"
        assert main(
            ["convert", str(database_file), str(target), "--to", "sharded", "--shards", "2"]
        ) == 0
        assert (target / "manifest.json").exists()
        assert len(list(target.glob("shard-*.bin"))) == 2

    def test_convert_missing_source(self, tmp_path, capsys):
        assert main(["convert", str(tmp_path / "nope.json"), str(tmp_path / "out.json")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_info_reports_format_and_counts(self, database_file, tmp_path, capsys):
        assert main(["info", str(database_file)]) == 0
        output = capsys.readouterr().out
        assert "format: json" in output
        assert "images: 3" in output
        sharded = tmp_path / "db.shards"
        assert main(["convert", str(database_file), str(sharded)]) == 0
        capsys.readouterr()
        assert main(["info", str(sharded)]) == 0
        output = capsys.readouterr().out
        assert "format: sharded" in output
        assert "shard_count: 16" in output

    def test_convert_signature_flags_and_info(self, database_file, tmp_path, capsys):
        lean = tmp_path / "lean.json"
        assert main(["convert", str(database_file), str(lean), "--no-signatures"]) == 0
        assert "without signatures" in capsys.readouterr().out
        assert main(["info", str(lean)]) == 0
        assert "signatures: False" in capsys.readouterr().out

        tuned = tmp_path / "tuned.sqlite"
        assert main(
            ["convert", str(database_file), str(tuned), "--bitmap-width", "64"]
        ) == 0
        out = capsys.readouterr().out
        assert "with shortlist signatures" in out and "width 64" in out
        assert main(["info", str(tuned)]) == 0
        assert "signatures: True" in capsys.readouterr().out

        from repro.index.backends import load_database_from

        restored = load_database_from(tuned)
        assert all(
            record.signature is not None and record.signature.width == 64
            for record in restored
        )

    def test_info_on_corrupt_file(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["info", str(path)]) == 2
        assert "malformed database" in capsys.readouterr().err

    def test_search_works_on_every_format(self, database_file, scene_files, tmp_path, capsys):
        office_path = next(path for name, path in scene_files.items() if "office" in name)
        for suffix in ("db.sqlite", "db.shards"):
            target = tmp_path / suffix
            assert main(["convert", str(database_file), str(target)]) == 0
            capsys.readouterr()
            assert main(["search", str(target), str(office_path), "--top", "1"]) == 0
            assert "office-000" in capsys.readouterr().out.splitlines()[0]

    def test_build_with_format_flag(self, scene_files, tmp_path, capsys):
        target = tmp_path / "built.sqlite"
        scene_arguments = [str(path) for path in scene_files.values()]
        assert main(["build", str(target), "--format", "sqlite"] + scene_arguments) == 0
        capsys.readouterr()
        assert main(["info", str(target)]) == 0
        assert "format: sqlite" in capsys.readouterr().out

    def test_demo_sharded_format(self, tmp_path, capsys):
        target = tmp_path / "demo.shards"
        assert main(["demo", "--output", str(target), "--format", "sharded"]) == 0
        assert (target / "manifest.json").exists()
        assert "office-000" in capsys.readouterr().out


class TestServeAndPing:
    def test_serve_check_binds_and_reports_address(self, database_file, capsys):
        assert main(["serve", str(database_file), "--port", "0", "--check"]) == 0
        output = capsys.readouterr().out
        assert "serving" in output and "http://127.0.0.1:" in output
        assert "3 images" in output
        assert "persisting incrementally" in output

    def test_serve_check_no_persist(self, database_file, capsys):
        assert main(
            ["serve", str(database_file), "--port", "0", "--check", "--no-persist"]
        ) == 0
        assert "in-memory only" in capsys.readouterr().out

    def test_serve_missing_database(self, tmp_path, capsys):
        assert main(["serve", str(tmp_path / "none.json"), "--check"]) == 2
        assert "not found" in capsys.readouterr().err

    def test_serve_rejects_bad_knobs(self, database_file, capsys):
        assert main(
            ["serve", str(database_file), "--port", "0", "--workers", "0", "--check"]
        ) == 2
        assert "cannot start" in capsys.readouterr().err

    def test_ping_round_trip_against_live_server(self, database_file, capsys):
        from repro.retrieval.system import RetrievalSystem
        from repro.service.server import create_server

        system = RetrievalSystem.from_file(database_file)
        with create_server(system, port=0).start_background() as server:
            assert main(["ping", server.url]) == 0
            output = capsys.readouterr().out
            assert "ok: 3 images" in output
            assert "round-trip" in output

    def test_ping_unreachable_server(self, capsys):
        assert main(["ping", "http://127.0.0.1:1", "--timeout", "0.2"]) == 2
        assert "unreachable" in capsys.readouterr().err

    def test_ping_bad_url(self, capsys):
        assert main(["ping", "ftp://example.com"]) == 2
        assert "http" in capsys.readouterr().err


class TestDurableServeAndRecover:
    @pytest.fixture
    def sharded_database(self, database_file, tmp_path):
        target = tmp_path / "db.shards"
        assert main(["convert", str(database_file), str(target)]) == 0
        return target

    def test_serve_wal_check_reports_durable_mode(self, sharded_database, capsys):
        assert main(
            ["serve", str(sharded_database), "--port", "0", "--wal", "--check"]
        ) == 0
        output = capsys.readouterr().out
        assert "write-ahead logging" in output
        assert "ack-after-fsync" in output
        assert "compacting every 256 records" in output

    def test_serve_wal_conflicts_with_no_persist(self, sharded_database, capsys):
        assert main(
            ["serve", str(sharded_database), "--port", "0", "--check",
             "--wal", "--no-persist"]
        ) == 2
        assert "cannot combine with --no-persist" in capsys.readouterr().err

    def test_serve_wal_rejects_bad_compact_interval(self, sharded_database, capsys):
        assert main(
            ["serve", str(sharded_database), "--port", "0", "--check",
             "--wal", "--wal-compact-every", "0"]
        ) == 2
        assert "--wal-compact-every must be at least 1" in capsys.readouterr().err

    def test_recover_check_reports_log_state(self, sharded_database, capsys):
        # serve --wal --check upgrades the plain sharded directory in place.
        assert main(
            ["serve", str(sharded_database), "--port", "0", "--wal", "--check"]
        ) == 0
        capsys.readouterr()
        assert main(["recover", str(sharded_database), "--check"]) == 0
        output = capsys.readouterr().out
        assert "log: wal.log (clean)" in output
        assert "pending records to replay: 0" in output

    def test_recover_replays_and_compacts(self, sharded_database, capsys):
        from repro.index.backends import (
            DurableShardedStore,
            describe_database,
            load_database_from,
        )
        from repro.retrieval.system import RetrievalSystem

        system = RetrievalSystem.from_file(sharded_database)
        system.save(sharded_database, durable=True)
        database = system._engine.database
        with DurableShardedStore(database, sharded_database) as store:
            replica = database.get(database.image_ids[0])
            database.add_picture(replica.picture.renamed("logged-only"), "logged-only")
            store.log_upsert(database.get("logged-only"))
            assert store.pending_records == 1

        assert main(["recover", str(sharded_database)]) == 0
        output = capsys.readouterr().out
        assert "pending records to replay: 1" in output
        assert "recovered: 4 images" in output
        recovered = load_database_from(sharded_database)
        assert "logged-only" in recovered
        assert describe_database(sharded_database)["wal"]["pending_records"] == 0

    def test_recover_on_non_durable_database(self, database_file, capsys):
        assert main(["recover", str(database_file)]) == 2
        assert "has no write-ahead log" in capsys.readouterr().err

    def test_info_shows_wal_line(self, sharded_database, capsys):
        assert main(
            ["serve", str(sharded_database), "--port", "0", "--wal", "--check"]
        ) == 0
        capsys.readouterr()
        assert main(["info", str(sharded_database)]) == 0
        output = capsys.readouterr().out
        assert "wal: wal.log (snapshot_lsn 0, last_lsn 0, 0 pending, 5 bytes, clean)" in output


class TestConvertBitmapWidthValidation:
    def test_zero_bitmap_width_is_rejected(self, database_file, tmp_path, capsys):
        # Regression: `or DEFAULT` treated 0 as falsy and silently wrote
        # width-128 signatures instead of erroring.
        code = main(
            ["convert", str(database_file), str(tmp_path / "out.json"),
             "--bitmap-width", "0"]
        )
        assert code == 2
        assert "--bitmap-width must be at least 1" in capsys.readouterr().err

    def test_negative_bitmap_width_is_rejected(self, database_file, tmp_path, capsys):
        code = main(
            ["convert", str(database_file), str(tmp_path / "out.json"),
             "--bitmap-width", "-8"]
        )
        assert code == 2
        assert "--bitmap-width must be at least 1" in capsys.readouterr().err


class TestCliWarmStart:
    def test_cli_loads_systems_through_the_warm_start_path(
        self, database_file, tmp_path, monkeypatch
    ):
        # Regression: _load_system used to re-add pictures one by one,
        # re-encoding every BE-string and dropping persisted signatures
        # (tuned bitmap width included).
        tuned = tmp_path / "tuned.sqlite"
        assert main(
            ["convert", str(database_file), str(tuned), "--bitmap-width", "64"]
        ) == 0

        from repro.cli import _load_system
        from repro.index import shortlist

        def _explode(*args, **kwargs):
            raise AssertionError("CLI load recomputed a persisted signature")

        monkeypatch.setattr(shortlist.ImageSignature, "from_bestring", _explode)
        system = _load_system(str(tuned))
        assert system._engine.bitmap_width == 64
        # A clean dirty set: the first incremental save rewrites nothing.
        assert not system._engine.database.dirty_ids

    def test_reconvert_without_flag_keeps_the_tuned_width(
        self, database_file, tmp_path
    ):
        # Regression: a flag-less convert used to reset tuned signatures
        # back to the 128-bit default.
        tuned = tmp_path / "tuned.json"
        assert main(
            ["convert", str(database_file), str(tuned), "--bitmap-width", "64"]
        ) == 0
        reconverted = tmp_path / "reconverted.sqlite"
        assert main(["convert", str(tuned), str(reconverted)]) == 0

        from repro.index.backends import load_database_from

        restored = load_database_from(reconverted)
        assert all(record.signature.width == 64 for record in restored)
