"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.index.storage import picture_to_json_text


@pytest.fixture
def scene_files(tmp_path, office, traffic, landscape):
    paths = {}
    for picture in (office, traffic, landscape):
        path = tmp_path / f"{picture.name}.json"
        path.write_text(picture_to_json_text(picture), encoding="utf-8")
        paths[picture.name] = path
    return paths


@pytest.fixture
def database_file(tmp_path, scene_files):
    database_path = tmp_path / "db.json"
    code = main(["build", str(database_path)] + [str(path) for path in scene_files.values()])
    assert code == 0
    return database_path


class TestEncode:
    def test_encode_prints_both_axes(self, scene_files, capsys):
        office_path = next(path for name, path in scene_files.items() if "office" in name)
        assert main(["encode", str(office_path)]) == 0
        output = capsys.readouterr().out
        assert "x:" in output and "y:" in output and "desk" in output

    def test_encode_missing_file(self, tmp_path, capsys):
        assert main(["encode", str(tmp_path / "missing.json")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_encode_malformed_file(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["encode", str(path)]) == 2
        assert "malformed" in capsys.readouterr().err


class TestBuildAndSearch:
    def test_build_writes_database(self, database_file, capsys):
        payload = json.loads(database_file.read_text())
        assert len(payload["images"]) == 3

    def test_search_finds_identical_scene(self, database_file, scene_files, capsys):
        office_path = next(path for name, path in scene_files.items() if "office" in name)
        assert main(["search", str(database_file), str(office_path), "--top", "2"]) == 0
        output = capsys.readouterr().out
        assert "office-000" in output.splitlines()[0]
        assert "score=1.000" in output

    def test_search_with_flags(self, database_file, scene_files, capsys):
        traffic_path = next(path for name, path in scene_files.items() if "traffic" in name)
        assert main(
            ["search", str(database_file), str(traffic_path), "--invariant", "--no-filters"]
        ) == 0
        assert "traffic-000" in capsys.readouterr().out

    def test_search_missing_database(self, tmp_path, scene_files, capsys):
        office_path = next(iter(scene_files.values()))
        assert main(["search", str(tmp_path / "none.json"), str(office_path)]) == 2


class TestRelationsShowDemo:
    def test_relations_query(self, database_file, capsys):
        code = main(
            ["relations", str(database_file), "monitor above desk and phone right-of monitor"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert output.splitlines()[0].startswith("office-000")
        assert "2/2" in output

    def test_relations_bad_query(self, database_file, capsys):
        assert main(["relations", str(database_file), "monitor hovering-near desk"]) == 2
        assert "unknown relation" in capsys.readouterr().err

    def test_show_renders_ascii(self, database_file, capsys):
        assert main(["show", str(database_file), "landscape-000", "--columns", "40"]) == 0
        output = capsys.readouterr().out
        assert output.startswith("+")
        assert "legend" in output

    def test_show_unknown_image(self, database_file, capsys):
        assert main(["show", str(database_file), "nope"]) == 2

    def test_demo_end_to_end(self, tmp_path, capsys):
        target = tmp_path / "demo.json"
        assert main(["demo", "--output", str(target)]) == 0
        output = capsys.readouterr().out
        assert target.exists()
        assert "office-000" in output
        assert "predicates hold" in output
