"""Guards that keep the CI workflow in lockstep with the repository.

The bench-smoke job enumerates benchmark modules as a matrix (so one broken
module cannot mask the others), which means a newly added
``benchmarks/bench_*.py`` would silently get zero CI coverage unless the
matrix grows with it.  This suite parses the workflow with the standard
library (no YAML dependency) and fails the moment the two drift apart.
"""

import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
WORKFLOW = REPO_ROOT / ".github" / "workflows" / "ci.yml"


def bench_matrix_entries():
    """The ``bench:`` matrix list items declared in the workflow."""
    text = WORKFLOW.read_text(encoding="utf-8")
    match = re.search(r"^ +bench:\n((?: +- [\w-]+\n)+)", text, flags=re.MULTILINE)
    assert match, "ci.yml no longer declares the bench-smoke matrix"
    return [line.strip()[2:] for line in match.group(1).splitlines()]


class TestBenchSmokeMatrix:
    def test_matrix_covers_every_benchmark_module(self):
        modules = sorted(
            path.stem[len("bench_"):]
            for path in (REPO_ROOT / "benchmarks").glob("bench_*.py")
        )
        entries = bench_matrix_entries()
        missing = set(modules) - set(entries)
        stale = set(entries) - set(modules)
        assert not missing, (
            f"benchmarks without CI smoke coverage: {sorted(missing)} -- "
            "add them to the bench-smoke matrix in .github/workflows/ci.yml"
        )
        assert not stale, (
            f"bench-smoke matrix names missing modules: {sorted(stale)} -- "
            "remove them from .github/workflows/ci.yml"
        )

    def test_matrix_is_sorted_and_unique(self):
        entries = bench_matrix_entries()
        assert entries == sorted(set(entries))


class TestWorkflowInvariants:
    def test_concurrency_cancellation_is_active(self):
        text = WORKFLOW.read_text(encoding="utf-8")
        assert "cancel-in-progress: true" in text

    def test_every_pip_install_job_caches_pip(self):
        text = WORKFLOW.read_text(encoding="utf-8")
        jobs = re.split(r"\n  (?=\w[\w-]*:\n)", text)
        for job in jobs:
            if "pip install" in job and "setup-python" in job:
                assert "cache: pip" in job, (
                    "a job pip-installs without actions/setup-python pip caching:\n"
                    + job[:200]
                )
