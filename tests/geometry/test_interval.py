"""Unit tests for repro.geometry.interval."""

import pytest

from repro.geometry.interval import Interval


class TestConstruction:
    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Interval(5, 1)

    def test_degenerate_interval_is_allowed(self):
        interval = Interval(3, 3)
        assert interval.is_degenerate
        assert interval.length == 0

    def test_tuple_and_iteration(self):
        assert tuple(Interval(1, 4)) == (1, 4)
        assert Interval(1, 4).as_tuple() == (1, 4)


class TestMeasures:
    def test_length_and_midpoint(self):
        interval = Interval(2, 8)
        assert interval.length == 6
        assert interval.midpoint == 5


class TestPredicates:
    def test_contains_point_boundaries_inclusive(self):
        interval = Interval(1, 5)
        assert interval.contains_point(1)
        assert interval.contains_point(5)
        assert not interval.contains_point(5.001)

    def test_containment(self):
        assert Interval(0, 10).contains(Interval(2, 5))
        assert Interval(0, 10).contains(Interval(0, 10))
        assert not Interval(0, 10).strictly_contains(Interval(0, 10))
        assert Interval(0, 10).strictly_contains(Interval(1, 9))

    def test_overlap_closed_vs_strict(self):
        assert Interval(0, 5).overlaps(Interval(5, 8))
        assert not Interval(0, 5).strictly_overlaps(Interval(5, 8))
        assert Interval(0, 5).strictly_overlaps(Interval(4, 8))

    def test_touches_and_disjoint(self):
        assert Interval(0, 5).touches(Interval(5, 7))
        assert not Interval(0, 5).touches(Interval(6, 7))
        assert Interval(0, 5).disjoint_from(Interval(6, 7))
        assert not Interval(0, 5).disjoint_from(Interval(5, 7))


class TestCombinations:
    def test_intersection_present_and_absent(self):
        assert Interval(0, 5).intersection(Interval(3, 8)) == Interval(3, 5)
        assert Interval(0, 5).intersection(Interval(5, 8)) == Interval(5, 5)
        assert Interval(0, 4).intersection(Interval(5, 8)) is None

    def test_union_hull(self):
        assert Interval(0, 2).union_hull(Interval(5, 8)) == Interval(0, 8)

    def test_translate_and_scale(self):
        assert Interval(1, 3).translate(2) == Interval(3, 5)
        assert Interval(1, 3).scale(2) == Interval(2, 6)
        with pytest.raises(ValueError):
            Interval(1, 3).scale(-1)

    def test_reflect_inside_extent(self):
        # Mirroring [2, 5] inside [0, 10] gives [5, 8].
        assert Interval(2, 5).reflect(10) == Interval(5, 8)

    def test_reflect_twice_is_identity(self):
        interval = Interval(2.5, 7.25)
        assert interval.reflect(10).reflect(10) == interval

    def test_clamp(self):
        assert Interval(-5, 15).clamp(0, 10) == Interval(0, 10)
        assert Interval(2, 3).clamp(0, 10) == Interval(2, 3)
        with pytest.raises(ValueError):
            Interval(0, 1).clamp(5, 4)
