"""Unit tests for 2-D spatial relations between MBRs."""

import pytest

from repro.geometry.allen import AllenRelation
from repro.geometry.rectangle import Rectangle
from repro.geometry.relations import (
    DirectionalRelation,
    SpatialRelation,
    TopologicalClass,
    directional_relation,
    directional_relation_between,
    spatial_relation,
)


class TestSpatialRelation:
    def test_disjoint_rectangles(self):
        a = Rectangle(0, 0, 2, 2)
        b = Rectangle(5, 5, 7, 7)
        relation = spatial_relation(a, b)
        assert relation == SpatialRelation(AllenRelation.BEFORE, AllenRelation.BEFORE)
        assert relation.topology is TopologicalClass.DISJOINT

    def test_equal_rectangles(self):
        a = Rectangle(1, 1, 3, 3)
        relation = spatial_relation(a, a)
        assert relation.topology is TopologicalClass.EQUAL

    def test_containment_both_directions(self):
        outer = Rectangle(0, 0, 10, 10)
        inner = Rectangle(2, 3, 5, 6)
        assert spatial_relation(outer, inner).topology is TopologicalClass.CONTAINS
        assert spatial_relation(inner, outer).topology is TopologicalClass.INSIDE

    def test_partial_overlap(self):
        a = Rectangle(0, 0, 5, 5)
        b = Rectangle(3, 3, 8, 8)
        assert spatial_relation(a, b).topology is TopologicalClass.OVERLAPPING

    def test_edge_touching(self):
        a = Rectangle(0, 0, 5, 5)
        b = Rectangle(5, 0, 8, 5)
        assert spatial_relation(a, b).topology is TopologicalClass.TOUCHING

    def test_inverse_swaps_operands(self):
        a = Rectangle(0, 0, 5, 5)
        b = Rectangle(3, 1, 8, 4)
        forward = spatial_relation(a, b)
        backward = spatial_relation(b, a)
        assert forward.inverse() == backward
        assert backward.inverse() == forward

    def test_disjoint_on_one_axis_only_is_disjoint(self):
        a = Rectangle(0, 0, 2, 10)
        b = Rectangle(5, 0, 7, 10)
        assert spatial_relation(a, b).topology is TopologicalClass.DISJOINT


class TestDirectionalRelation:
    def test_basic_orderings(self):
        assert directional_relation(0, 2, 3, 5) is DirectionalRelation.BEFORE
        assert directional_relation(3, 5, 0, 2) is DirectionalRelation.AFTER
        assert directional_relation(0, 4, 2, 6) is DirectionalRelation.SAME

    def test_touching_counts_as_same(self):
        # Closed intervals sharing a boundary are not strictly ordered.
        assert directional_relation(0, 2, 2, 5) is DirectionalRelation.SAME

    def test_between_rectangles_per_axis(self):
        a = Rectangle(0, 0, 2, 2)
        b = Rectangle(5, 1, 7, 3)
        assert directional_relation_between(a, b, "x") is DirectionalRelation.BEFORE
        assert directional_relation_between(a, b, "y") is DirectionalRelation.SAME
        with pytest.raises(ValueError):
            directional_relation_between(a, b, "z")
