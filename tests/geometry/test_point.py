"""Unit tests for repro.geometry.point."""


import pytest

from repro.geometry.point import Point


class TestBasics:
    def test_iteration_and_tuple(self):
        point = Point(3.0, 4.0)
        assert tuple(point) == (3.0, 4.0)
        assert point.as_tuple() == (3.0, 4.0)

    def test_equality_and_hash(self):
        assert Point(1, 2) == Point(1.0, 2.0)
        assert hash(Point(1, 2)) == hash(Point(1.0, 2.0))

    def test_ordering_is_lexicographic(self):
        assert Point(1, 5) < Point(2, 0)
        assert Point(1, 1) < Point(1, 2)


class TestArithmetic:
    def test_translate(self):
        assert Point(1, 1).translate(2, -3) == Point(3, -2)

    def test_add_and_subtract(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)
        assert Point(3, 4) - Point(1, 2) == Point(2, 2)

    def test_scale_uniform_and_anisotropic(self):
        assert Point(2, 3).scale(2) == Point(4, 6)
        assert Point(2, 3).scale(2, 0.5) == Point(4, 1.5)

    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)
        assert Point(0, 0).manhattan_distance_to(Point(3, 4)) == pytest.approx(7.0)


class TestTransforms:
    def test_reflect_x_about_line(self):
        assert Point(2, 3).reflect_x(axis_y=5) == Point(2, 7)

    def test_reflect_y_about_line(self):
        assert Point(2, 3).reflect_y(axis_x=5) == Point(8, 3)

    def test_rotate90_in_frame(self):
        # (x, y) -> (height - y, x) for a clockwise quarter turn.
        assert Point(1, 2).rotate90(width=10, height=6) == Point(4, 1)

    def test_rotate90_four_times_identity_in_square_frame(self):
        point = Point(2, 5)
        rotated = point
        for _ in range(4):
            rotated = rotated.rotate90(width=10, height=10)
        assert rotated == point
