"""Unit tests for Allen's interval relations."""

import pytest

from repro.geometry.allen import (
    AllenRelation,
    allen_relation,
    inverse_relation,
    is_global,
    is_local,
    shares_point,
)
from repro.geometry.interval import Interval


CASES = [
    (Interval(0, 2), Interval(3, 5), AllenRelation.BEFORE),
    (Interval(3, 5), Interval(0, 2), AllenRelation.AFTER),
    (Interval(0, 3), Interval(3, 5), AllenRelation.MEETS),
    (Interval(3, 5), Interval(0, 3), AllenRelation.MET_BY),
    (Interval(0, 4), Interval(2, 6), AllenRelation.OVERLAPS),
    (Interval(2, 6), Interval(0, 4), AllenRelation.OVERLAPPED_BY),
    (Interval(1, 3), Interval(1, 6), AllenRelation.STARTS),
    (Interval(1, 6), Interval(1, 3), AllenRelation.STARTED_BY),
    (Interval(2, 4), Interval(0, 6), AllenRelation.DURING),
    (Interval(0, 6), Interval(2, 4), AllenRelation.CONTAINS),
    (Interval(4, 6), Interval(0, 6), AllenRelation.FINISHES),
    (Interval(0, 6), Interval(4, 6), AllenRelation.FINISHED_BY),
    (Interval(1, 5), Interval(1, 5), AllenRelation.EQUALS),
]


class TestClassification:
    @pytest.mark.parametrize("a, b, expected", CASES)
    def test_each_relation(self, a, b, expected):
        assert allen_relation(a, b) is expected

    @pytest.mark.parametrize("a, b, expected", CASES)
    def test_inverse_consistency(self, a, b, expected):
        assert allen_relation(b, a) is inverse_relation(expected)

    def test_all_thirteen_relations_covered(self):
        assert {expected for _, _, expected in CASES} == set(AllenRelation)

    def test_degenerate_intervals(self):
        assert allen_relation(Interval(2, 2), Interval(2, 2)) is AllenRelation.EQUALS
        assert allen_relation(Interval(2, 2), Interval(3, 5)) is AllenRelation.BEFORE
        assert allen_relation(Interval(2, 2), Interval(0, 5)) is AllenRelation.DURING


class TestInverseTable:
    def test_inverse_is_involution(self):
        for relation in AllenRelation:
            assert inverse_relation(inverse_relation(relation)) is relation

    def test_equals_is_self_inverse(self):
        assert inverse_relation(AllenRelation.EQUALS) is AllenRelation.EQUALS


class TestCategories:
    def test_local_and_global_partition(self):
        for relation in AllenRelation:
            assert is_local(relation) != is_global(relation)

    def test_before_after_are_global_and_share_no_point(self):
        assert is_global(AllenRelation.BEFORE)
        assert is_global(AllenRelation.AFTER)
        assert not shares_point(AllenRelation.BEFORE)
        assert not shares_point(AllenRelation.AFTER)

    def test_meets_is_global_but_shares_point(self):
        assert is_global(AllenRelation.MEETS)
        assert shares_point(AllenRelation.MEETS)

    def test_overlaps_is_local(self):
        assert is_local(AllenRelation.OVERLAPS)
        assert is_local(AllenRelation.DURING)
        assert is_local(AllenRelation.EQUALS)
