"""Unit tests for repro.geometry.rectangle."""

import pytest

from repro.geometry.interval import Interval
from repro.geometry.point import Point
from repro.geometry.rectangle import Rectangle


class TestConstruction:
    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Rectangle(5, 0, 1, 10)
        with pytest.raises(ValueError):
            Rectangle(0, 5, 10, 1)

    def test_from_corners_any_order(self):
        expected = Rectangle(1, 2, 5, 7)
        assert Rectangle.from_corners(Point(5, 7), Point(1, 2)) == expected
        assert Rectangle.from_corners(Point(1, 7), Point(5, 2)) == expected

    def test_from_intervals_and_projections_roundtrip(self):
        rectangle = Rectangle.from_intervals(Interval(1, 5), Interval(2, 7))
        assert rectangle.x_interval == Interval(1, 5)
        assert rectangle.y_interval == Interval(2, 7)

    def test_from_origin_size(self):
        assert Rectangle.from_origin_size(1, 2, 4, 5) == Rectangle(1, 2, 5, 7)
        with pytest.raises(ValueError):
            Rectangle.from_origin_size(0, 0, -1, 2)


class TestMeasures:
    def test_width_height_area_center(self):
        rectangle = Rectangle(1, 2, 5, 7)
        assert rectangle.width == 4
        assert rectangle.height == 5
        assert rectangle.area == 20
        assert rectangle.center == Point(3, 4.5)

    def test_corners_and_tuple(self):
        rectangle = Rectangle(1, 2, 5, 7)
        assert rectangle.bottom_left == Point(1, 2)
        assert rectangle.top_right == Point(5, 7)
        assert rectangle.as_tuple() == (1, 2, 5, 7)
        assert tuple(rectangle) == (1, 2, 5, 7)


class TestPredicates:
    def test_contains_point_boundary_inclusive(self):
        rectangle = Rectangle(0, 0, 4, 4)
        assert rectangle.contains_point(Point(0, 0))
        assert rectangle.contains_point(Point(4, 4))
        assert not rectangle.contains_point(Point(4.1, 4))

    def test_contains_rectangle(self):
        assert Rectangle(0, 0, 10, 10).contains(Rectangle(2, 2, 5, 5))
        assert Rectangle(0, 0, 10, 10).contains(Rectangle(0, 0, 10, 10))
        assert not Rectangle(0, 0, 10, 10).contains(Rectangle(5, 5, 11, 6))

    def test_intersections(self):
        a = Rectangle(0, 0, 4, 4)
        assert a.intersects(Rectangle(4, 4, 6, 6))  # corner touch
        assert not a.strictly_intersects(Rectangle(4, 4, 6, 6))
        assert a.strictly_intersects(Rectangle(3, 3, 6, 6))
        assert not a.intersects(Rectangle(5, 5, 6, 6))


class TestCombinations:
    def test_intersection_rectangle(self):
        a = Rectangle(0, 0, 4, 4)
        assert a.intersection(Rectangle(2, 2, 6, 6)) == Rectangle(2, 2, 4, 4)
        assert a.intersection(Rectangle(5, 5, 6, 6)) is None

    def test_union_hull(self):
        assert Rectangle(0, 0, 1, 1).union_hull(Rectangle(4, 5, 6, 7)) == Rectangle(0, 0, 6, 7)

    def test_translate_and_scale(self):
        assert Rectangle(1, 1, 2, 2).translate(3, 4) == Rectangle(4, 5, 5, 6)
        assert Rectangle(1, 1, 2, 2).scale(2) == Rectangle(2, 2, 4, 4)
        with pytest.raises(ValueError):
            Rectangle(1, 1, 2, 2).scale(-2)


class TestFrameTransforms:
    FRAME_W, FRAME_H = 10.0, 6.0

    def test_reflect_y_axis(self):
        rectangle = Rectangle(1, 2, 4, 5)
        assert rectangle.reflect_y_axis(self.FRAME_W) == Rectangle(6, 2, 9, 5)

    def test_reflect_x_axis(self):
        rectangle = Rectangle(1, 2, 4, 5)
        assert rectangle.reflect_x_axis(self.FRAME_H) == Rectangle(1, 1, 4, 4)

    def test_reflections_are_involutions(self):
        rectangle = Rectangle(1, 2, 4, 5)
        assert rectangle.reflect_y_axis(self.FRAME_W).reflect_y_axis(self.FRAME_W) == rectangle
        assert rectangle.reflect_x_axis(self.FRAME_H).reflect_x_axis(self.FRAME_H) == rectangle

    def test_rotate90_is_contained_in_rotated_frame(self):
        rectangle = Rectangle(1, 2, 4, 5)
        rotated = rectangle.rotate90(self.FRAME_W, self.FRAME_H)
        assert Rectangle(0, 0, self.FRAME_H, self.FRAME_W).contains(rotated)

    def test_rotate90_then_270_is_identity(self):
        rectangle = Rectangle(1, 2, 4, 5)
        rotated = rectangle.rotate90(self.FRAME_W, self.FRAME_H)
        # The rotated rectangle lives in a (H x W) frame.
        back = rotated.rotate270(self.FRAME_H, self.FRAME_W)
        assert back == rectangle

    def test_rotate180_twice_is_identity(self):
        rectangle = Rectangle(1, 2, 4, 5)
        once = rectangle.rotate180(self.FRAME_W, self.FRAME_H)
        assert once.rotate180(self.FRAME_W, self.FRAME_H) == rectangle

    def test_rotate90_composed_twice_equals_rotate180(self):
        rectangle = Rectangle(1, 2, 4, 5)
        twice = rectangle.rotate90(self.FRAME_W, self.FRAME_H).rotate90(self.FRAME_H, self.FRAME_W)
        assert twice == rectangle.rotate180(self.FRAME_W, self.FRAME_H)

    def test_area_preserved_by_all_frame_transforms(self):
        rectangle = Rectangle(1, 2, 4, 5)
        assert rectangle.rotate90(self.FRAME_W, self.FRAME_H).area == rectangle.area
        assert rectangle.rotate180(self.FRAME_W, self.FRAME_H).area == rectangle.area
        assert rectangle.rotate270(self.FRAME_W, self.FRAME_H).area == rectangle.area
        assert rectangle.reflect_x_axis(self.FRAME_H).area == rectangle.area
        assert rectangle.reflect_y_axis(self.FRAME_W).area == rectangle.area
