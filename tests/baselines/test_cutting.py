"""Unit tests for the G-/C-string cutting substrate."""


from repro.baselines.cutting import (
    c_string_cuts,
    cut_interval,
    g_string_cuts,
    ordered_segment_symbols,
    segment_count,
    segments_per_object,
)
from repro.geometry.interval import Interval


class TestCutInterval:
    def test_no_interior_points(self):
        assert cut_interval(Interval(0, 10), [0, 10, 20]) == [Interval(0, 10)]

    def test_single_interior_point(self):
        assert cut_interval(Interval(0, 10), [4]) == [Interval(0, 4), Interval(4, 10)]

    def test_multiple_points_sorted_and_deduplicated(self):
        pieces = cut_interval(Interval(0, 10), [8, 2, 2, 5])
        assert pieces == [Interval(0, 2), Interval(2, 5), Interval(5, 8), Interval(8, 10)]


class TestGStringCuts:
    def test_disjoint_objects_are_not_cut(self):
        projections = {"A": Interval(0, 2), "B": Interval(5, 8)}
        segments = g_string_cuts(projections)
        assert segment_count(segments) == 2
        assert segments_per_object(segments) == {"A": 1, "B": 1}

    def test_overlapping_objects_are_cut_at_each_others_boundaries(self):
        projections = {"A": Interval(0, 6), "B": Interval(4, 10)}
        segments = g_string_cuts(projections)
        assert segments_per_object(segments) == {"A": 2, "B": 2}

    def test_containment_cuts_outer_object_twice(self):
        projections = {"outer": Interval(0, 10), "inner": Interval(3, 6)}
        segments = g_string_cuts(projections)
        per_object = segments_per_object(segments)
        assert per_object["outer"] == 3
        assert per_object["inner"] == 1

    def test_ordered_symbols_sorted_by_begin(self):
        projections = {"A": Interval(0, 6), "B": Interval(4, 10)}
        symbols = [symbol for _, symbol in ordered_segment_symbols(g_string_cuts(projections))]
        assert symbols[0] == "A[0]"
        assert symbols[-1] == "B[1]"


class TestCStringCuts:
    def test_disjoint_objects_are_not_cut(self):
        projections = {"A": Interval(0, 2), "B": Interval(5, 8)}
        assert segment_count(c_string_cuts(projections)) == 2

    def test_partial_overlap_cuts_only_the_follower(self):
        projections = {"A": Interval(0, 6), "B": Interval(4, 10)}
        per_object = segments_per_object(c_string_cuts(projections))
        assert per_object == {"A": 1, "B": 2}

    def test_containment_triggers_no_cut(self):
        projections = {"outer": Interval(0, 10), "inner": Interval(3, 6)}
        per_object = segments_per_object(c_string_cuts(projections))
        assert per_object == {"outer": 1, "inner": 1}

    def test_c_string_never_cuts_more_than_g_string(self):
        projections = {
            "A": Interval(0, 6),
            "B": Interval(4, 12),
            "C": Interval(10, 20),
            "D": Interval(2, 18),
        }
        assert segment_count(c_string_cuts(projections)) <= segment_count(
            g_string_cuts(projections)
        )

    def test_staircase_produces_quadratic_cuts(self):
        # Object i spans [i, n + i]; every earlier end falls inside every
        # later object, giving ~n^2/2 sub-objects overall.
        n = 8
        projections = {f"o{i:02d}": Interval(i, n + i) for i in range(n)}
        count = segment_count(c_string_cuts(projections))
        assert count >= n + (n * (n - 1)) // 4  # clearly super-linear
