"""Unit tests for Chang's original 2-D strings."""

import pytest

from repro.baselines.twod_string import (
    AxisTwoDString,
    TwoDString,
    encode_2d_string,
    rank_assignment,
)
from repro.geometry.rectangle import Rectangle
from repro.iconic.picture import SymbolicPicture


@pytest.fixture
def row_picture():
    return SymbolicPicture.build(
        width=30,
        height=10,
        objects=[
            ("A", Rectangle(0, 0, 8, 10)),
            ("B", Rectangle(10, 0, 18, 10)),
            ("C", Rectangle(20, 0, 28, 10)),
        ],
        name="row",
    )


class TestAxisString:
    def test_operator_count_invariant(self):
        with pytest.raises(ValueError):
            AxisTwoDString(symbols=("A", "B"), operators=())

    def test_to_text(self):
        axis = AxisTwoDString(symbols=("A", "B", "C"), operators=("<", "="))
        assert axis.to_text() == "A < B = C"
        assert axis.symbol_count == 3
        assert axis.storage_units == 5

    def test_empty_axis(self):
        axis = AxisTwoDString(symbols=(), operators=())
        assert axis.to_text() == ""
        assert axis.storage_units == 0


class TestEncoding:
    def test_row_layout_orders_by_x(self, row_picture):
        encoded = encode_2d_string(row_picture)
        assert encoded.u.symbols == ("A", "B", "C")
        assert encoded.u.operators == ("<", "<")

    def test_row_layout_is_all_same_on_y(self, row_picture):
        encoded = encode_2d_string(row_picture)
        assert set(encoded.v.operators) == {"="}

    def test_begin_reference_differs_from_centroid(self):
        picture = SymbolicPicture.build(
            width=20,
            height=20,
            objects=[("A", Rectangle(0, 0, 10, 2)), ("B", Rectangle(0, 4, 2, 20))],
        )
        centroid = encode_2d_string(picture, reference="centroid")
        begin = encode_2d_string(picture, reference="begin")
        assert begin.u.operators == ("=",)
        assert centroid.u.operators == ("<",)
        assert centroid.u.symbols == ("B", "A")

    def test_unknown_reference_rejected(self, row_picture):
        with pytest.raises(ValueError):
            encode_2d_string(row_picture, reference="corner")

    def test_storage_units_scale_linearly(self, row_picture):
        encoded = encode_2d_string(row_picture)
        # 3 symbols + 2 operators per axis.
        assert encoded.storage_units == 10


class TestRankAssignment:
    def test_ranks_follow_operators(self):
        axis = AxisTwoDString(symbols=("A", "B", "C"), operators=("<", "="))
        assert rank_assignment(axis) == {"A": 0, "B": 1, "C": 1}

    def test_ranks_of_encoded_picture(self, row_picture):
        encoded = encode_2d_string(row_picture)
        ranks = rank_assignment(encoded.u)
        assert ranks["A"] < ranks["B"] < ranks["C"]
