"""Unit tests for the clique-based type-0/1/2 similarity baseline."""

import pytest

from repro.baselines.type_similarity import (
    SimilarityType,
    type_similarity,
    type_similarity_all,
)
from repro.datasets.transforms_gen import scrambled_variant
from repro.geometry.rectangle import Rectangle
from repro.iconic.picture import SymbolicPicture


class TestBasics:
    def test_identical_images_match_all_objects(self, office):
        for similarity_type in SimilarityType:
            result = type_similarity(office, office, similarity_type)
            assert result.similarity == len(office)
            assert result.matched_objects == set(office.identifiers)
            assert result.match_ratio == pytest.approx(1.0)

    def test_no_common_objects_scores_zero(self, office, landscape):
        result = type_similarity(office, landscape)
        assert result.similarity == 0
        assert result.common_objects == frozenset()

    def test_single_common_object_scores_one(self, office):
        query = office.subset(["desk"])
        result = type_similarity(query, office)
        assert result.similarity == 1
        assert result.pair_count == 0

    def test_partial_query_matches_its_objects(self, office):
        query = office.subset(["desk", "monitor", "phone"])
        result = type_similarity(query, office, SimilarityType.TYPE_1)
        assert result.matched_objects == {"desk", "monitor", "phone"}


class TestTypeNesting:
    """Type-2 is stricter than type-1, which is stricter than type-0."""

    @pytest.fixture
    def shifted_pair(self):
        base = SymbolicPicture.build(
            width=40,
            height=30,
            objects=[
                ("A", Rectangle(0, 0, 10, 10)),
                ("B", Rectangle(8, 0, 30, 10)),
                ("C", Rectangle(35, 20, 40, 30)),
            ],
            name="base",
        )
        # In the variant B is stretched to start exactly where A starts: the
        # coarse directional relation of (A, B) is unchanged ("same span"),
        # but the Allen category changes from OVERLAPS to STARTS, so type-0
        # still matches the pair while type-1 does not.  The relations of C to
        # both A and B are untouched.
        variant = SymbolicPicture.build(
            width=40,
            height=30,
            objects=[
                ("A", Rectangle(0, 0, 10, 10)),
                ("B", Rectangle(0, 0, 30, 10)),
                ("C", Rectangle(35, 20, 40, 30)),
            ],
            name="variant",
        )
        return base, variant

    def test_type0_is_most_permissive(self, shifted_pair):
        base, variant = shifted_pair
        results = type_similarity_all(base, variant)
        assert (
            results[SimilarityType.TYPE_0].similarity
            >= results[SimilarityType.TYPE_1].similarity
            >= results[SimilarityType.TYPE_2].similarity
        )

    def test_overlap_change_breaks_type1_but_not_type0(self, shifted_pair):
        base, variant = shifted_pair
        type0 = type_similarity(base, variant, SimilarityType.TYPE_0)
        type1 = type_similarity(base, variant, SimilarityType.TYPE_1)
        assert type0.similarity == 3
        assert type1.similarity < 3

    def test_type2_requires_same_ordinal_configuration(self):
        base = SymbolicPicture.build(
            width=40,
            height=10,
            objects=[("A", Rectangle(0, 0, 10, 10)), ("B", Rectangle(20, 0, 30, 10))],
        )
        stretched = SymbolicPicture.build(
            width=40,
            height=10,
            objects=[("A", Rectangle(0, 0, 5, 10)), ("B", Rectangle(30, 0, 40, 10))],
        )
        # Same Allen relations (disjoint, before) -> type-1 matches both.
        assert type_similarity(base, stretched, SimilarityType.TYPE_1).similarity == 2
        assert type_similarity(base, stretched, SimilarityType.TYPE_2).similarity == 2


class TestAgainstScrambles:
    def test_scrambled_scene_scores_lower(self, office):
        scrambled = scrambled_variant(office, seed=5)
        same = type_similarity(office, office, SimilarityType.TYPE_1).similarity
        different = type_similarity(office, scrambled, SimilarityType.TYPE_1).similarity
        assert different < same

    def test_pair_count_is_quadratic(self, office):
        result = type_similarity(office, office)
        n = len(office)
        assert result.pair_count == n * (n - 1) // 2
