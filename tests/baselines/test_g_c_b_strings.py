"""Unit tests for the 2D G-, C- and B-string encoders and the storage comparison."""

import pytest

from repro.baselines.b_string import encode_b_string
from repro.baselines.c_string import encode_c_string
from repro.baselines.g_string import encode_g_string
from repro.core.construct import encode_picture
from repro.datasets.synthetic import (
    SceneParameters,
    aligned_picture,
    random_picture,
    staircase_picture,
)
from repro.geometry.rectangle import Rectangle
from repro.iconic.picture import SymbolicPicture


@pytest.fixture
def overlapping_picture():
    return SymbolicPicture.build(
        width=20,
        height=20,
        objects=[
            ("A", Rectangle(0, 0, 10, 10)),
            ("B", Rectangle(6, 6, 16, 16)),
            ("C", Rectangle(12, 0, 20, 8)),
        ],
        name="overlapping",
    )


class TestGString:
    def test_disjoint_objects_have_one_segment_each(self, two_object_picture):
        encoded = encode_g_string(two_object_picture)
        assert encoded.x.segment_count == 2
        # The y projections [2, 6] and [4, 9] partially overlap, so each is
        # cut once by the other's boundary.
        assert encoded.y.segment_count == 4

    def test_overlapping_objects_generate_extra_segments(self, overlapping_picture):
        encoded = encode_g_string(overlapping_picture)
        assert encoded.total_segments > 2 * len(overlapping_picture)

    def test_text_form_lists_segments(self, overlapping_picture):
        text = encode_g_string(overlapping_picture).x.to_text()
        assert "A[0]" in text and "<" in text

    def test_storage_units_count_segments_and_operators(self, two_object_picture):
        encoded = encode_g_string(two_object_picture)
        assert encoded.x.storage_units == 2 * encoded.x.segment_count - 1


class TestCString:
    def test_c_string_cuts_at_most_as_much_as_g_string(self, overlapping_picture):
        g_encoded = encode_g_string(overlapping_picture)
        c_encoded = encode_c_string(overlapping_picture)
        assert c_encoded.total_segments <= g_encoded.total_segments

    def test_staircase_is_quadratic_for_c_string_linear_for_be_string(self):
        n = 10
        picture = staircase_picture(n)
        c_encoded = encode_c_string(picture)
        be_encoded = encode_picture(picture)
        assert c_encoded.total_segments > 2 * n  # super-linear cutting
        assert be_encoded.total_symbols <= 2 * (4 * n + 1)  # O(n) symbols

    def test_projection_overlap_cuts_only_the_follower(self, two_object_picture):
        encoded = encode_c_string(two_object_picture)
        # The x projections are disjoint (no cuts); the y projections overlap
        # partially, so only the follower (B) is cut, once.
        assert encoded.x.segment_count == 2
        assert encoded.y.segment_count == 3


class TestBString:
    def test_boundary_count_is_always_2n(self, overlapping_picture):
        encoded = encode_b_string(overlapping_picture)
        assert len(encoded.x.boundaries) == 2 * len(overlapping_picture)
        assert len(encoded.y.boundaries) == 2 * len(overlapping_picture)

    def test_equals_operator_marks_coincident_boundaries(self, fig1):
        encoded = encode_b_string(fig1)
        # Figure 1 has exactly one coincidence per axis (A.e/C.b on x, B.e/C.b on y).
        assert encoded.x.operators.count("=") == 1
        assert encoded.y.operators.count("=") == 1

    def test_storage_units_count_boundaries_plus_equals(self, fig1):
        encoded = encode_b_string(fig1)
        assert encoded.x.storage_units == 2 * len(fig1) + 1

    def test_text_form(self, fig1):
        text = encode_b_string(fig1).x.to_text()
        assert "A.b" in text and "=" in text


class TestStorageComparison:
    """The E2 storage shape: BE/B-strings are O(n); G/C-strings cut objects."""

    @pytest.mark.parametrize("seed", range(5))
    def test_be_string_within_paper_bounds_on_random_scenes(self, seed):
        picture = random_picture(seed, SceneParameters(object_count=10, alignment_probability=0.3))
        be_encoded = encode_picture(picture)
        n = len(picture)
        assert 2 * (2 * n + 1) <= be_encoded.total_symbols <= 2 * (4 * n + 1)

    def test_cut_based_strings_grow_faster_on_overlapping_scenes(self):
        picture = staircase_picture(12)
        be_symbols = encode_picture(picture).total_symbols
        b_units = encode_b_string(picture).storage_units
        c_units = encode_c_string(picture).storage_units
        g_units = encode_g_string(picture).storage_units
        assert be_symbols <= 2 * (4 * 12 + 1)
        assert b_units < c_units <= g_units

    def test_aligned_scene_is_cheap_for_everyone(self):
        picture = aligned_picture(8)
        assert encode_g_string(picture).total_segments == 2 * 8
        assert encode_c_string(picture).total_segments == 2 * 8
        assert encode_picture(picture).total_symbols <= 2 * (4 * 8 + 1)
