"""Unit tests for the maximum-clique solver."""

import random

import pytest

from repro.baselines.clique import build_graph, clique_number, greedy_clique, maximum_clique


def complete_graph(n):
    vertices = list(range(n))
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return build_graph(vertices, edges)


class TestBuildGraph:
    def test_edges_are_undirected(self):
        graph = build_graph(["a", "b"], [("a", "b")])
        assert graph["a"] == {"b"}
        assert graph["b"] == {"a"}

    def test_self_loops_ignored(self):
        graph = build_graph(["a"], [("a", "a")])
        assert graph["a"] == set()

    def test_unknown_vertex_rejected(self):
        with pytest.raises(ValueError):
            build_graph(["a"], [("a", "z")])


class TestMaximumClique:
    def test_empty_graph(self):
        assert maximum_clique({}) == frozenset()

    def test_single_vertex(self):
        assert maximum_clique(build_graph(["a"], [])) == frozenset({"a"})

    def test_independent_set_has_clique_one(self):
        graph = build_graph(["a", "b", "c"], [])
        assert clique_number(graph) == 1

    def test_complete_graph(self):
        assert clique_number(complete_graph(6)) == 6

    def test_triangle_plus_pendant(self):
        graph = build_graph(
            ["a", "b", "c", "d"], [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")]
        )
        assert maximum_clique(graph) == frozenset({"a", "b", "c"})

    def test_two_cliques_picks_larger(self):
        vertices = list("abcdefg")
        small = [("a", "b"), ("b", "c"), ("a", "c")]
        large = [
            ("d", "e"),
            ("d", "f"),
            ("d", "g"),
            ("e", "f"),
            ("e", "g"),
            ("f", "g"),
        ]
        graph = build_graph(vertices, small + large)
        assert maximum_clique(graph) == frozenset({"d", "e", "f", "g"})

    def test_bipartite_graph_has_clique_two(self):
        graph = build_graph(
            ["l1", "l2", "r1", "r2"],
            [("l1", "r1"), ("l1", "r2"), ("l2", "r1"), ("l2", "r2")],
        )
        assert clique_number(graph) == 2

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs_against_brute_force(self, seed):
        rng = random.Random(seed)
        vertices = list(range(9))
        edges = [
            (i, j)
            for i in vertices
            for j in vertices
            if i < j and rng.random() < 0.45
        ]
        graph = build_graph(vertices, edges)

        def is_clique(subset):
            return all(b in graph[a] for a in subset for b in subset if a != b)

        best = 0
        for mask in range(1 << len(vertices)):
            subset = [v for v in vertices if mask & (1 << v)]
            if is_clique(subset):
                best = max(best, len(subset))
        assert clique_number(graph) == best


class TestGreedyClique:
    def test_greedy_result_is_a_clique(self):
        graph = complete_graph(5)
        result = greedy_clique(graph)
        assert all(b in graph[a] for a in result for b in result if a != b)

    def test_greedy_never_exceeds_exact(self):
        graph = build_graph(
            ["a", "b", "c", "d"], [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")]
        )
        assert len(greedy_clique(graph)) <= clique_number(graph)
