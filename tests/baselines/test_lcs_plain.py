"""Unit tests for the textbook LCS and the dummy-aware ablation."""

import pytest

from repro.baselines.lcs_plain import (
    classic_lcs_length,
    classic_lcs_string,
    dummy_aware_lcs_length,
)
from repro.core.bestring import AxisBEString
from repro.core.construct import encode_picture
from repro.core.lcs import be_lcs_length
from repro.datasets.synthetic import SceneParameters, random_picture


def axis(text: str) -> AxisBEString:
    return AxisBEString.from_text(text)


class TestClassicLCS:
    def test_identical_strings(self):
        string = axis("E A.b E A.e E")
        assert classic_lcs_length(string, string) == 5
        assert classic_lcs_string(string, string).to_text() == string.to_text()

    def test_no_common_symbols(self):
        assert classic_lcs_length(axis("A.b A.e"), axis("B.b B.e")) == 0
        assert classic_lcs_string(axis("A.b A.e"), axis("B.b B.e")).symbols == ()

    def test_classic_counts_runs_of_dummies(self):
        # The textbook LCS happily aligns multiple dummies in a row, which
        # inflates the score of structurally unrelated strings -- exactly what
        # the paper's modification suppresses.
        query = axis("E A.b E A.e E")
        database = axis("E B.b E B.e E")
        assert classic_lcs_length(query, database) == 3
        assert be_lcs_length(query, database) == 1

    def test_classic_is_upper_bound_of_modified(self, fig1, office):
        for picture in (fig1, office):
            bestring = encode_picture(picture)
            partial = encode_picture(picture.subset(picture.identifiers[:2]))
            assert classic_lcs_length(partial.x, bestring.x) >= be_lcs_length(
                partial.x, bestring.x
            )

    def test_classic_string_is_common_subsequence(self, fig1_bestring):
        query = axis("E A.b C.b E C.e A.e E")
        lcs = classic_lcs_string(query, fig1_bestring.x)

        def is_subsequence(candidate, reference):
            iterator = iter(reference)
            return all(symbol in iterator for symbol in candidate)

        assert is_subsequence(lcs.symbols, query.symbols)
        assert is_subsequence(lcs.symbols, fig1_bestring.x.symbols)


class TestDummyAwareAblation:
    """The explicit-boolean variant must agree with the sign-encoded one."""

    def test_simple_cases(self):
        cases = [
            ("E", "E"),
            ("E A.b E A.e E", "E A.b E A.e E"),
            ("E A.b E A.e E", "E B.b E B.e E"),
            ("A.b E A.e", "A.b A.e"),
        ]
        for query_text, database_text in cases:
            query, database = axis(query_text), axis(database_text)
            assert dummy_aware_lcs_length(query, database) == be_lcs_length(query, database)

    @pytest.mark.parametrize("seed", range(6))
    def test_agreement_on_random_scene_pairs(self, seed):
        parameters = SceneParameters(object_count=7, alignment_probability=0.4)
        query_picture = random_picture(seed, parameters)
        database_picture = random_picture(seed + 100, parameters)
        query = encode_picture(query_picture)
        database = encode_picture(database_picture)
        for query_axis, database_axis in ((query.x, database.x), (query.y, database.y)):
            assert dummy_aware_lcs_length(query_axis, database_axis) == be_lcs_length(
                query_axis, database_axis
            )

    def test_agreement_on_partial_queries(self, office):
        full = encode_picture(office)
        partial = encode_picture(office.subset(["desk", "monitor", "phone"]))
        assert dummy_aware_lcs_length(partial.x, full.x) == be_lcs_length(partial.x, full.x)
        assert dummy_aware_lcs_length(partial.y, full.y) == be_lcs_length(partial.y, full.y)
