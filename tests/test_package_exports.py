"""Smoke tests for the package's public surface."""

import importlib

import pytest

import repro


SUBPACKAGES = [
    "repro.geometry",
    "repro.iconic",
    "repro.core",
    "repro.baselines",
    "repro.index",
    "repro.retrieval",
    "repro.datasets",
    "repro.service",
    "repro.cli",
]


class TestTopLevelExports:
    def test_version_is_a_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing name {name!r}"

    def test_core_workflow_symbols_are_exported(self):
        for name in ("SymbolicPicture", "Rectangle", "encode_picture", "RetrievalSystem"):
            assert name in repro.__all__

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackages_import_cleanly(self, module_name):
        module = importlib.import_module(module_name)
        assert module is not None

    @pytest.mark.parametrize(
        "module_name",
        ["repro.geometry", "repro.iconic", "repro.core", "repro.baselines", "repro.index", "repro.retrieval", "repro.datasets", "repro.service"],
    )
    def test_subpackage_all_lists_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.__all__ lists missing name {name!r}"

    def test_readme_quickstart_api_exists(self):
        # The README's quickstart uses exactly these call paths.
        picture = repro.SymbolicPicture.build(
            width=10, height=10, objects=[("a", repro.Rectangle(1, 1, 2, 2))], name="t"
        )
        bestring = repro.encode_picture(picture)
        assert repro.similarity(bestring, bestring).score == 1.0
        system = repro.RetrievalSystem.from_pictures([picture])
        assert system.query(picture).execute()[0].image_id == "t"
