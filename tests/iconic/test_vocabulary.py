"""Unit tests for icon vocabularies."""

import pytest

from repro.iconic.vocabulary import (
    IconVocabulary,
    VocabularyError,
    landscape_vocabulary,
    office_vocabulary,
    traffic_vocabulary,
)


class TestConstruction:
    def test_from_labels_assigns_deterministic_symbols(self):
        vocabulary = IconVocabulary.from_labels(["desk", "chair", "lamp"])
        assert vocabulary.symbol_for("desk") == "A"
        assert vocabulary.symbol_for("chair") == "B"
        assert vocabulary.symbol_for("lamp") == "C"

    def test_rebuilding_from_same_labels_is_identical(self):
        first = IconVocabulary.from_labels(["a", "b", "c"])
        second = IconVocabulary.from_labels(["a", "b", "c"])
        assert first.to_mapping() == second.to_mapping()

    def test_from_mapping_roundtrip(self):
        mapping = {"car": "C", "bus": "B"}
        vocabulary = IconVocabulary.from_mapping(mapping)
        assert vocabulary.to_mapping() == mapping

    def test_symbols_wrap_past_26_labels(self):
        labels = [f"label{i}" for i in range(30)]
        vocabulary = IconVocabulary.from_labels(labels)
        assert len(vocabulary) == 30
        assert len(set(vocabulary.symbols)) == 30
        assert vocabulary.symbol_for("label26") == "A1"


class TestErrors:
    def test_empty_label_rejected(self):
        with pytest.raises(VocabularyError):
            IconVocabulary().add("")

    def test_duplicate_symbol_rejected(self):
        vocabulary = IconVocabulary()
        vocabulary.add("car", "X")
        with pytest.raises(VocabularyError):
            vocabulary.add("bus", "X")

    def test_conflicting_remap_rejected(self):
        vocabulary = IconVocabulary()
        vocabulary.add("car", "X")
        with pytest.raises(VocabularyError):
            vocabulary.add("car", "Y")

    def test_readding_same_label_is_idempotent(self):
        vocabulary = IconVocabulary()
        assert vocabulary.add("car") == vocabulary.add("car")

    def test_unknown_lookups_raise(self):
        vocabulary = IconVocabulary.from_labels(["car"])
        with pytest.raises(VocabularyError):
            vocabulary.symbol_for("bus")
        with pytest.raises(VocabularyError):
            vocabulary.label_for("Z")


class TestLookups:
    def test_bidirectional_lookup(self):
        vocabulary = IconVocabulary.from_labels(["car", "bus"])
        for label in vocabulary.labels:
            assert vocabulary.label_for(vocabulary.symbol_for(label)) == label

    def test_contains_len_iter(self):
        vocabulary = IconVocabulary.from_labels(["car", "bus"])
        assert "car" in vocabulary
        assert "train" not in vocabulary
        assert len(vocabulary) == 2
        assert list(vocabulary) == ["car", "bus"]


class TestThemedVocabularies:
    @pytest.mark.parametrize(
        "builder, expected_member",
        [
            (office_vocabulary, "desk"),
            (traffic_vocabulary, "car"),
            (landscape_vocabulary, "mountain"),
        ],
    )
    def test_builders_contain_expected_labels(self, builder, expected_member):
        vocabulary = builder()
        assert expected_member in vocabulary
        assert len(vocabulary) == 12
        assert len(set(vocabulary.symbols)) == 12
