"""Unit tests for icon objects."""

import pytest

from repro.geometry.rectangle import Rectangle
from repro.iconic.icon import IconObject


class TestConstruction:
    def test_requires_label(self):
        with pytest.raises(ValueError):
            IconObject(label="", mbr=Rectangle(0, 0, 1, 1))

    def test_requires_non_negative_instance(self):
        with pytest.raises(ValueError):
            IconObject(label="car", mbr=Rectangle(0, 0, 1, 1), instance=-1)

    def test_identifier_formats(self):
        base = IconObject(label="car", mbr=Rectangle(0, 0, 1, 1))
        assert base.identifier == "car"
        second = base.with_instance(2)
        assert second.identifier == "car#2"

    def test_area(self):
        icon = IconObject(label="car", mbr=Rectangle(0, 0, 4, 2))
        assert icon.area == 8


class TestDerivedCopies:
    def test_with_mbr_preserves_identity(self):
        icon = IconObject(label="car", mbr=Rectangle(0, 0, 1, 1), instance=1)
        moved = icon.with_mbr(Rectangle(5, 5, 6, 6))
        assert moved.label == "car"
        assert moved.instance == 1
        assert moved.mbr == Rectangle(5, 5, 6, 6)
        assert icon.mbr == Rectangle(0, 0, 1, 1)  # original untouched

    def test_translate(self):
        icon = IconObject(label="car", mbr=Rectangle(0, 0, 1, 1))
        assert icon.translate(2, 3).mbr == Rectangle(2, 3, 3, 4)


class TestSerialisation:
    def test_roundtrip(self):
        icon = IconObject(label="car", mbr=Rectangle(1, 2, 3, 4), instance=2)
        assert IconObject.from_dict(icon.to_dict()) == icon

    def test_from_dict_defaults_instance(self):
        payload = {"label": "car", "mbr": [0, 0, 1, 1]}
        assert IconObject.from_dict(payload).instance == 0

    def test_ordering_is_by_label_then_mbr(self):
        a = IconObject(label="a", mbr=Rectangle(0, 0, 1, 1))
        b = IconObject(label="b", mbr=Rectangle(0, 0, 1, 1))
        assert a < b
