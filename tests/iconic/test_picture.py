"""Unit tests for symbolic pictures."""

import pytest

from repro.geometry.allen import AllenRelation
from repro.geometry.rectangle import Rectangle
from repro.iconic.picture import PictureError, SymbolicPicture, fig1_picture


class TestConstruction:
    def test_requires_positive_frame(self):
        with pytest.raises(PictureError):
            SymbolicPicture(width=0, height=10)
        with pytest.raises(PictureError):
            SymbolicPicture(width=10, height=-1)

    def test_icons_must_fit_in_frame(self):
        with pytest.raises(PictureError):
            SymbolicPicture.build(
                width=10, height=10, objects=[("A", Rectangle(5, 5, 12, 8))]
            )

    def test_build_assigns_instances_to_repeated_labels(self):
        picture = SymbolicPicture.build(
            width=10,
            height=10,
            objects=[("tree", Rectangle(0, 0, 1, 1)), ("tree", Rectangle(2, 2, 3, 3))],
        )
        assert picture.identifiers == ["tree", "tree#1"]

    def test_duplicate_identifiers_rejected(self):
        from repro.iconic.icon import IconObject

        icon = IconObject(label="tree", mbr=Rectangle(0, 0, 1, 1))
        with pytest.raises(PictureError):
            SymbolicPicture(width=10, height=10, icons=(icon, icon))

    def test_canonical_icon_order_makes_equal_pictures_equal(self):
        objects = [("b", Rectangle(0, 0, 1, 1)), ("a", Rectangle(2, 2, 3, 3))]
        first = SymbolicPicture.build(width=10, height=10, objects=objects)
        second = SymbolicPicture.build(width=10, height=10, objects=list(reversed(objects)))
        assert first == second


class TestAccess:
    def test_len_iter_labels(self, two_object_picture):
        assert len(two_object_picture) == 2
        assert {icon.label for icon in two_object_picture} == {"A", "B"}
        assert two_object_picture.labels == ["A", "B"]

    def test_icon_lookup(self, two_object_picture):
        assert two_object_picture.icon("A").mbr == Rectangle(2, 2, 8, 6)
        assert two_object_picture.has_icon("B")
        assert not two_object_picture.has_icon("C")
        with pytest.raises(KeyError):
            two_object_picture.icon("C")

    def test_icons_with_label(self):
        picture = SymbolicPicture.build(
            width=10,
            height=10,
            objects=[("tree", Rectangle(0, 0, 1, 1)), ("tree", Rectangle(2, 2, 3, 3))],
        )
        trees = picture.icons_with_label("tree")
        assert [icon.instance for icon in trees] == [0, 1]


class TestEditing:
    def test_add_icon_returns_new_picture(self, two_object_picture):
        grown = two_object_picture.add_icon("C", Rectangle(0, 0, 1, 1))
        assert len(grown) == 3
        assert len(two_object_picture) == 2

    def test_add_icon_increments_instance(self, two_object_picture):
        grown = two_object_picture.add_icon("A", Rectangle(0, 8, 1, 9))
        assert grown.has_icon("A#1")

    def test_remove_icon(self, two_object_picture):
        shrunk = two_object_picture.remove_icon("A")
        assert shrunk.identifiers == ["B"]
        with pytest.raises(KeyError):
            two_object_picture.remove_icon("missing")

    def test_subset(self, fig1):
        subset = fig1.subset(["A", "C"])
        assert subset.identifiers == ["A", "C"]
        with pytest.raises(KeyError):
            fig1.subset(["A", "missing"])

    def test_renamed(self, fig1):
        assert fig1.renamed("other").name == "other"
        assert fig1.renamed("other").icons == fig1.icons


class TestGeometricTransforms:
    def test_rotate90_swaps_frame(self, fig1):
        rotated = fig1.rotate90()
        assert rotated.width == fig1.height
        assert rotated.height == fig1.width
        assert len(rotated) == len(fig1)

    def test_rotate90_four_times_is_identity(self, fig1):
        picture = fig1
        for _ in range(4):
            picture = picture.rotate90()
        assert picture == fig1

    def test_rotate180_twice_is_identity(self, fig1):
        assert fig1.rotate180().rotate180() == fig1

    def test_reflections_are_involutions(self, fig1):
        assert fig1.reflect_x().reflect_x() == fig1
        assert fig1.reflect_y().reflect_y() == fig1

    def test_two_reflections_equal_rotate180(self, fig1):
        assert fig1.reflect_x().reflect_y() == fig1.rotate180()


class TestRelations:
    def test_relation_between(self, fig1):
        relation = fig1.relation_between("A", "B")
        # A is left of and above B in the Figure 1 layout.
        assert relation.x is AllenRelation.MEETS or relation.x is AllenRelation.BEFORE
        assert relation.y is AllenRelation.AFTER

    def test_pairwise_relations_cover_all_pairs(self, fig1):
        relations = fig1.pairwise_relations()
        assert set(relations) == {("A", "B"), ("A", "C"), ("B", "C")}


class TestSerialisation:
    def test_roundtrip(self, fig1):
        assert SymbolicPicture.from_dict(fig1.to_dict()) == fig1

    def test_fig1_builder_matches_paper_structure(self):
        picture = fig1_picture()
        assert picture.identifiers == ["A", "B", "C"]
        # The boundary coincidences that Figure 1 illustrates:
        assert picture.icon("A").mbr.x_end == picture.icon("C").mbr.x_begin
        assert picture.icon("B").mbr.y_end == picture.icon("C").mbr.y_begin
