"""Unit tests for the ASCII renderer."""

import pytest

from repro.iconic.ascii_art import render_ascii


class TestRenderAscii:
    def test_contains_legend_and_border(self, fig1):
        art = render_ascii(fig1, columns=30, rows=12)
        lines = art.splitlines()
        assert lines[0].startswith("+") and lines[0].endswith("+")
        assert any(line.startswith("legend:") for line in lines)
        assert any("picture: fig1" in line for line in lines)

    def test_icon_characters_appear(self, fig1):
        art = render_ascii(fig1, columns=30, rows=12)
        grid_lines = [line for line in art.splitlines() if line.startswith("|")]
        text = "".join(grid_lines)
        for character in ("A", "B", "C"):
            assert character in text

    def test_grid_dimensions(self, fig1):
        art = render_ascii(fig1, columns=24, rows=8)
        grid_lines = [line for line in art.splitlines() if line.startswith("|")]
        assert len(grid_lines) == 8
        assert all(len(line) == 26 for line in grid_lines)  # 24 + two border chars

    def test_rejects_tiny_grids(self, fig1):
        with pytest.raises(ValueError):
            render_ascii(fig1, columns=2, rows=10)
