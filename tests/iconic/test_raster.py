"""Unit tests for the raster substrate (rendering and segmentation)."""

import numpy as np
import pytest

from repro.geometry.rectangle import Rectangle
from repro.iconic.picture import SymbolicPicture
from repro.iconic.raster import LabeledRaster, segment_picture_roundtrip


class TestConstruction:
    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            LabeledRaster(np.zeros((2, 2, 2), dtype=int))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            LabeledRaster(np.zeros((0, 5), dtype=int))

    def test_rejects_float_grid(self):
        with pytest.raises(ValueError):
            LabeledRaster(np.zeros((3, 3), dtype=float))

    def test_rejects_negative_labels(self):
        grid = np.zeros((3, 3), dtype=int)
        grid[0, 0] = -1
        with pytest.raises(ValueError):
            LabeledRaster(grid)

    def test_grid_is_copied(self):
        grid = np.zeros((3, 3), dtype=int)
        raster = LabeledRaster(grid)
        grid[0, 0] = 9
        assert raster.grid[0, 0] == 0

    def test_dimensions_and_values(self):
        grid = np.zeros((4, 6), dtype=int)
        grid[1, 2] = 3
        raster = LabeledRaster(grid)
        assert raster.height == 4
        assert raster.width == 6
        assert raster.values == [3]
        assert raster.coverage() == pytest.approx(1 / 24)


class TestConnectedComponents:
    def test_single_block(self):
        grid = np.zeros((5, 5), dtype=int)
        grid[1:3, 2:4] = 7
        regions = LabeledRaster(grid).connected_components()
        assert len(regions) == 1
        region = regions[0]
        assert region.value == 7
        assert region.pixel_count == 4
        # rows 1-2 from the top of a 5-row grid -> cartesian y in [2, 4].
        assert region.mbr == Rectangle(2.0, 2.0, 4.0, 4.0)

    def test_two_blocks_same_value_are_separate_regions(self):
        grid = np.zeros((5, 5), dtype=int)
        grid[0, 0] = 2
        grid[4, 4] = 2
        regions = LabeledRaster(grid).connected_components()
        assert len(regions) == 2
        assert all(region.value == 2 for region in regions)

    def test_diagonal_pixels_joined_only_with_8_connectivity(self):
        grid = np.zeros((3, 3), dtype=int)
        grid[0, 0] = 1
        grid[1, 1] = 1
        assert len(LabeledRaster(grid).connected_components(connectivity=4)) == 2
        assert len(LabeledRaster(grid).connected_components(connectivity=8)) == 1

    def test_invalid_connectivity(self):
        with pytest.raises(ValueError):
            LabeledRaster(np.zeros((2, 2), dtype=int)).connected_components(connectivity=6)


class TestRenderAndSegment:
    def test_render_marks_each_icon(self, two_object_picture):
        raster, value_map = LabeledRaster.render(two_object_picture)
        assert sorted(value_map.values()) == ["A", "B"]
        assert raster.values == [1, 2]

    def test_to_picture_uses_value_labels(self):
        grid = np.zeros((6, 6), dtype=int)
        grid[0:2, 0:2] = 1
        grid[4:6, 4:6] = 2
        picture = LabeledRaster(grid).to_picture(value_labels={1: "sky", 2: "sea"})
        assert set(picture.labels) == {"sky", "sea"}

    def test_to_picture_defaults_label_names(self):
        grid = np.zeros((4, 4), dtype=int)
        grid[0, 0] = 5
        picture = LabeledRaster(grid).to_picture()
        assert picture.labels == ["object5"]

    def test_roundtrip_preserves_non_overlapping_mbrs(self, two_object_picture):
        recovered = segment_picture_roundtrip(two_object_picture)
        assert recovered.identifiers == two_object_picture.identifiers
        for identifier in two_object_picture.identifiers:
            assert recovered.icon(identifier).mbr == two_object_picture.icon(identifier).mbr

    def test_roundtrip_on_integer_grid_scene(self):
        picture = SymbolicPicture.build(
            width=20,
            height=15,
            objects=[
                ("a", Rectangle(1, 1, 5, 4)),
                ("b", Rectangle(7, 2, 12, 9)),
                ("c", Rectangle(14, 10, 19, 14)),
            ],
        )
        recovered = segment_picture_roundtrip(picture)
        assert len(recovered) == 3
        for identifier in picture.identifiers:
            assert recovered.icon(identifier).mbr == picture.icon(identifier).mbr
