"""Unit tests for the retrieval corpora."""

import pytest

from repro.datasets.corpus import Corpus, planted_retrieval_corpus, transformation_corpus
from repro.geometry.rectangle import Rectangle
from repro.iconic.picture import SymbolicPicture


class TestCorpusValidation:
    def test_validate_passes_on_consistent_corpus(self):
        picture = SymbolicPicture.build(
            width=10, height=10, objects=[("a", Rectangle(0, 0, 1, 1))], name="img"
        )
        query = picture.renamed("q")
        corpus = Corpus(
            name="tiny",
            database_pictures=[picture],
            queries=[query],
            relevance={"q": {"img"}},
        )
        corpus.validate()
        assert corpus.relevant_to("q") == {"img"}
        assert corpus.relevant_to("unknown") == set()

    def test_validate_rejects_unknown_query(self):
        corpus = Corpus(name="bad", relevance={"missing": set()})
        with pytest.raises(ValueError):
            corpus.validate()

    def test_validate_rejects_unknown_relevant_image(self):
        picture = SymbolicPicture.build(
            width=10, height=10, objects=[("a", Rectangle(0, 0, 1, 1))], name="q"
        )
        corpus = Corpus(
            name="bad", queries=[picture], relevance={"q": {"ghost"}}
        )
        with pytest.raises(ValueError):
            corpus.validate()


class TestPlantedCorpus:
    def test_structure_and_counts(self):
        corpus = planted_retrieval_corpus(seed=1, base_scene_count=2, distractors_per_scene=3)
        summary = corpus.summary()
        assert summary["queries"] == 2
        # 4 planted variants + 3 distractors per base scene.
        assert summary["database_images"] == 2 * (4 + 3)
        assert summary["relevant_pairs"] == 2 * 3

    def test_deterministic(self):
        first = planted_retrieval_corpus(seed=7, base_scene_count=2, distractors_per_scene=2)
        second = planted_retrieval_corpus(seed=7, base_scene_count=2, distractors_per_scene=2)
        assert first.database_ids == second.database_ids
        assert first.relevance == second.relevance

    def test_relevant_images_exclude_scrambles_and_distractors(self):
        corpus = planted_retrieval_corpus(seed=2, base_scene_count=1, distractors_per_scene=4)
        relevant = corpus.relevant_to(corpus.queries[0].name)
        assert len(relevant) == 3
        assert not any("scrambled" in name for name in relevant)
        assert not any("distractor" in name for name in relevant)

    def test_invalid_keep_fraction(self):
        with pytest.raises(ValueError):
            planted_retrieval_corpus(query_keep_fraction=0.0)

    def test_queries_are_partial_views(self):
        corpus = planted_retrieval_corpus(seed=3, base_scene_count=1, query_keep_fraction=0.5)
        query = corpus.queries[0]
        base = corpus.database_pictures[0]
        assert len(query) < len(base)


class TestTransformationCorpus:
    def test_each_query_has_exactly_one_relevant_image(self):
        corpus = transformation_corpus(seed=1, base_scene_count=5, distractors_per_scene=2)
        for query in corpus.queries:
            assert len(corpus.relevant_to(query.name)) == 1

    def test_planted_images_are_transformed_copies(self):
        corpus = transformation_corpus(seed=1, base_scene_count=3, distractors_per_scene=1)
        for query in corpus.queries:
            relevant_name = next(iter(corpus.relevant_to(query.name)))
            assert any(
                transformation in relevant_name
                for transformation in ("rotate90", "rotate180", "rotate270", "reflect_x", "reflect_y")
            )

    def test_summary_counts(self):
        corpus = transformation_corpus(seed=0, base_scene_count=4, distractors_per_scene=3)
        summary = corpus.summary()
        assert summary["database_images"] == 4 * (1 + 3)
        assert summary["queries"] == 4
