"""Unit tests for the variant generators."""

import pytest

from repro.core.similarity import similarity_between_pictures
from repro.core.transforms import Transformation
from repro.datasets.transforms_gen import (
    partial_variant,
    perturbed_variant,
    scrambled_variant,
    transformed_variants,
)


class TestTransformedVariants:
    def test_all_six_variants_by_default(self, office):
        variants = transformed_variants(office)
        assert set(variants) == set(Transformation)
        assert variants[Transformation.IDENTITY].icons == office.icons

    def test_names_are_suffixed(self, office):
        variants = transformed_variants(office)
        assert variants[Transformation.ROTATE_90].name.endswith("rotate90")

    def test_subset_of_transformations(self, office):
        variants = transformed_variants(office, include=(Transformation.REFLECT_X,))
        assert set(variants) == {Transformation.REFLECT_X}

    def test_rotation_swaps_frame_dimensions(self, office):
        rotated = transformed_variants(office)[Transformation.ROTATE_90]
        assert rotated.width == office.height
        assert rotated.height == office.width


class TestPerturbedVariant:
    def test_same_labels_and_frame(self, office):
        variant = perturbed_variant(office, seed=1)
        assert sorted(variant.labels) == sorted(office.labels)
        assert variant.width == office.width

    def test_deterministic_per_seed(self, office):
        assert perturbed_variant(office, seed=5) == perturbed_variant(office, seed=5)
        assert perturbed_variant(office, seed=5) != perturbed_variant(office, seed=6)

    def test_icons_stay_inside_the_frame(self, office):
        variant = perturbed_variant(office, seed=2, amount=0.3)
        for icon in variant:
            assert variant.frame.contains(icon.mbr)

    def test_small_perturbation_keeps_similarity_high(self, office):
        variant = perturbed_variant(office, seed=3, amount=0.02)
        score = similarity_between_pictures(office, variant).score
        assert score > 0.5


class TestPartialVariant:
    def test_keeps_requested_number_of_icons(self, office):
        variant = partial_variant(office, keep=3, seed=0)
        assert len(variant) == 3
        assert set(variant.identifiers) <= set(office.identifiers)

    def test_keep_bounds_validated(self, office):
        with pytest.raises(ValueError):
            partial_variant(office, keep=0)
        with pytest.raises(ValueError):
            partial_variant(office, keep=len(office) + 1)

    def test_partial_variant_is_a_sub_scene(self, office):
        variant = partial_variant(office, keep=4, seed=7)
        for icon in variant:
            assert icon.mbr == office.icon(icon.identifier).mbr


class TestScrambledVariant:
    def test_same_label_multiset(self, office):
        variant = scrambled_variant(office, seed=1)
        assert sorted(variant.labels) == sorted(office.labels)

    def test_icons_stay_inside_the_frame(self, office):
        variant = scrambled_variant(office, seed=1)
        for icon in variant:
            assert variant.frame.contains(icon.mbr)

    def test_scramble_changes_layout(self, office):
        variant = scrambled_variant(office, seed=1)
        moved = [
            icon.identifier
            for icon in variant
            if icon.mbr != office.icon(icon.identifier).mbr
        ]
        assert len(moved) >= len(office) - 1
