"""Unit tests for the synthetic scene generators."""

import pytest

from repro.core.construct import encode_picture, storage_symbol_bounds
from repro.datasets.synthetic import (
    SceneParameters,
    aligned_picture,
    distinct_boundaries_picture,
    random_picture,
    random_pictures,
    stacked_picture,
    staircase_picture,
)


class TestSceneParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            SceneParameters(object_count=-1)
        with pytest.raises(ValueError):
            SceneParameters(minimum_size=0)
        with pytest.raises(ValueError):
            SceneParameters(minimum_size=10, maximum_size=5)
        with pytest.raises(ValueError):
            SceneParameters(alignment_probability=1.5)
        with pytest.raises(ValueError):
            SceneParameters(maximum_size=500)
        with pytest.raises(ValueError):
            SceneParameters(labels=())

    def test_defaults_are_valid(self):
        parameters = SceneParameters()
        assert parameters.object_count == 8


class TestRandomPicture:
    def test_deterministic_for_same_seed(self):
        assert random_picture(seed=42) == random_picture(seed=42)

    def test_different_seeds_differ(self):
        assert random_picture(seed=1) != random_picture(seed=2)

    def test_respects_object_count_and_frame(self):
        parameters = SceneParameters(object_count=15, width=200.0, height=50.0, maximum_size=20.0)
        picture = random_picture(seed=3, parameters=parameters)
        assert len(picture) == 15
        assert picture.width == 200.0
        for icon in picture:
            assert picture.frame.contains(icon.mbr)

    def test_zero_objects(self):
        picture = random_picture(seed=0, parameters=SceneParameters(object_count=0))
        assert len(picture) == 0

    def test_all_scenes_encode_within_bounds(self):
        parameters = SceneParameters(object_count=9, alignment_probability=0.6)
        for seed in range(15):
            picture = random_picture(seed, parameters)
            bestring = encode_picture(picture)
            lower, upper = storage_symbol_bounds(len(picture))
            assert lower <= len(bestring.x) <= upper
            assert lower <= len(bestring.y) <= upper

    def test_random_pictures_unique_names(self):
        pictures = random_pictures(5, seed=1)
        assert len({picture.name for picture in pictures}) == 5


class TestStructuredLayouts:
    def test_aligned_picture_tiles_span_frame(self):
        picture = aligned_picture(4, width=100.0, height=40.0)
        assert len(picture) == 4
        assert max(icon.mbr.x_end for icon in picture) == 100.0
        assert min(icon.mbr.x_begin for icon in picture) == 0.0

    def test_stacked_picture_is_best_case(self):
        picture = stacked_picture(5)
        bestring = encode_picture(picture)
        assert len(bestring.x) == 2 * 5 + 1

    def test_distinct_boundaries_picture_is_worst_case(self):
        picture = distinct_boundaries_picture(5)
        bestring = encode_picture(picture)
        assert len(bestring.x) == 4 * 5 + 1

    def test_staircase_objects_overlap_their_successors(self):
        picture = staircase_picture(5)
        icons = sorted(picture.icons, key=lambda icon: icon.mbr.x_begin)
        for first, second in zip(icons, icons[1:]):
            assert first.mbr.strictly_intersects(second.mbr)

    @pytest.mark.parametrize("builder", [aligned_picture, stacked_picture, staircase_picture, distinct_boundaries_picture])
    def test_builders_reject_zero_objects(self, builder):
        with pytest.raises(ValueError):
            builder(0)
