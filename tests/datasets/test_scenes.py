"""Unit tests for the themed scene builders."""

import pytest

from repro.core.construct import encode_picture
from repro.datasets.scenes import landscape_scene, office_scene, traffic_scene


BUILDERS = [office_scene, traffic_scene, landscape_scene]


class TestDeterminism:
    @pytest.mark.parametrize("builder", BUILDERS)
    def test_same_variant_is_identical(self, builder):
        assert builder(3) == builder(3)

    @pytest.mark.parametrize("builder", BUILDERS)
    def test_different_variants_differ(self, builder):
        assert builder(0) != builder(1)

    @pytest.mark.parametrize("builder", BUILDERS)
    def test_variant_zero_is_canonical(self, builder):
        # Variant 0 applies no jitter, so building it twice in different
        # processes must give the exact same coordinates.
        picture = builder(0)
        assert picture == builder(0)
        assert all(icon.mbr == builder(0).icon(icon.identifier).mbr for icon in picture)


class TestStructure:
    @pytest.mark.parametrize("builder", BUILDERS)
    def test_scene_encodes_validly(self, builder):
        for variant in (0, 1, 4, 9):
            picture = builder(variant)
            bestring = encode_picture(picture)
            bestring.validate()
            assert len(picture) == 8

    def test_office_has_expected_furniture(self, office):
        for label in ("desk", "chair", "monitor", "keyboard", "phone", "lamp"):
            assert office.has_icon(label)

    def test_office_monitor_sits_on_desk(self, office):
        desk = office.icon("desk").mbr
        monitor = office.icon("monitor").mbr
        assert monitor.y_begin == desk.y_end
        assert desk.x_begin < monitor.x_begin and monitor.x_end < desk.x_end

    def test_office_variant_five_swaps_phone_and_lamp(self):
        base = office_scene(0)
        swapped = office_scene(5)
        assert base.icon("phone").mbr.center.x > base.icon("lamp").mbr.center.x
        assert swapped.icon("phone").mbr.center.x < swapped.icon("lamp").mbr.center.x

    def test_traffic_variant_four_swaps_car_and_bus(self):
        base = traffic_scene(0)
        swapped = traffic_scene(4)
        assert base.icon("car").mbr.center.x < base.icon("bus").mbr.center.x
        assert swapped.icon("car").mbr.center.x > swapped.icon("bus").mbr.center.x

    def test_landscape_has_two_trees(self, landscape):
        assert len(landscape.icons_with_label("tree")) == 2

    def test_custom_names(self):
        assert office_scene(0, name="my-office").name == "my-office"
        assert traffic_scene(2).name == "traffic-002"
