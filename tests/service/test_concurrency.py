"""Concurrency stress suite: readers hammer the engine while writers mutate.

Every ranking handed to a reader must be *torn-read free*: byte-identical to
what a quiesced engine would return for one of the legal database states
(before or after the in-flight mutation), never a blend of the two.  The
suite drives the same :class:`~repro.retrieval.system.RetrievalSystem`
surface the HTTP daemon serves, with the readers-writer lock installed via
``enable_concurrent_access()``.

The heavy tests are marked ``slow``: the fast CI matrix skips them (``--fast``)
and the dedicated slow-tests job runs them.
"""

import threading

import pytest

from repro.datasets.scenes import landscape_scene, office_scene, traffic_scene
from repro.retrieval.system import RetrievalSystem

pytestmark = pytest.mark.slow

#: Stress shape: concurrent reader threads x mutation flips by the writer.
READERS = 6
FLIPS = 40

#: The probe query every reader runs, and the image the writer toggles.
PROBE = office_scene(0)
FLIPPED = office_scene(8).renamed("flip-target")


def base_pictures():
    return (
        [office_scene(variant) for variant in range(3)]
        + [traffic_scene(variant) for variant in range(2)]
        + [landscape_scene(variant) for variant in range(2)]
    )


def build_system(extra=()):
    system = RetrievalSystem.from_pictures(list(base_pictures()) + list(extra))
    return system


def snapshot(system, kind):
    """The quiesced ranking a correct read must reproduce exactly."""
    if kind == "similarity":
        return system.query(PROBE).limit(None).execute().to_dicts()
    if kind == "predicate":
        return system.query().where("monitor above desk").limit(None).execute().to_dicts()
    raise AssertionError(kind)


def hammer(system, legal_snapshots, kind, stop, failures, counts, index):
    """One reader loop: every observed ranking must be a legal snapshot."""
    while not stop.is_set():
        observed = snapshot(system, kind)
        counts[index] += 1
        if observed not in legal_snapshots:
            failures.append((kind, observed))
            return


class TestInterleavedWriters:
    @pytest.mark.parametrize("kind", ["similarity", "predicate"])
    def test_rankings_always_match_a_quiesced_engine(self, kind):
        """N readers vs a writer toggling a whole image in and out."""
        system = build_system().enable_concurrent_access()
        legal = [
            snapshot(build_system(), kind),
            snapshot(build_system([FLIPPED]), kind),
        ]
        assert legal[0] != legal[1], "the flipped image must change the ranking"

        stop = threading.Event()
        failures = []
        counts = [0] * READERS
        readers = [
            threading.Thread(
                target=hammer,
                args=(system, legal, kind, stop, failures, counts, index),
                daemon=True,
            )
            for index in range(READERS)
        ]
        for thread in readers:
            thread.start()
        try:
            for _ in range(FLIPS):
                system.add_picture(FLIPPED)
                system.remove_picture("flip-target")
        finally:
            stop.set()
        for thread in readers:
            thread.join(timeout=30)
        assert not failures, f"torn read: got a ranking matching no quiesced state: {failures[0]}"
        assert sum(counts) > 0, "readers never completed a query"
        # Quiesced end state: back to the base ranking.
        assert snapshot(system, kind) == legal[0]

    def test_object_level_edits_are_atomic_to_readers(self):
        """Readers vs a writer removing/restoring one icon inside an image."""
        edited_id = "office-000"
        desk = PROBE.icons_with_label("desk")[0]

        system = build_system().enable_concurrent_access()
        before = snapshot(build_system(), "similarity")
        reference_after = build_system()
        reference_after.remove_object(edited_id, desk.identifier)
        after = snapshot(reference_after, "similarity")
        assert before != after, "the object edit must change the ranking"
        legal = [before, after]

        stop = threading.Event()
        failures = []
        counts = [0] * READERS
        readers = [
            threading.Thread(
                target=hammer,
                args=(system, legal, "similarity", stop, failures, counts, index),
                daemon=True,
            )
            for index in range(READERS)
        ]
        for thread in readers:
            thread.start()
        try:
            for _ in range(FLIPS):
                system.remove_object(edited_id, desk.identifier)
                system.add_object(edited_id, "desk", desk.mbr)
        finally:
            stop.set()
        for thread in readers:
            thread.join(timeout=30)
        assert not failures, f"torn read after object edit: {failures[0]}"
        assert sum(counts) > 0
        assert snapshot(system, "similarity") == before

    def test_batches_see_one_snapshot(self):
        """A whole batch must rank against a single database state."""
        system = build_system().enable_concurrent_access()
        legal_single = [
            snapshot(build_system(), "similarity"),
            snapshot(build_system([FLIPPED]), "similarity"),
        ]
        stop = threading.Event()
        failures = []
        done = [0]

        def batch_reader():
            while not stop.is_set():
                results = system.query_batch(
                    [system.query(PROBE).limit(None) for _ in range(3)], workers=2
                )
                done[0] += 1
                rows = [batch.to_dicts() for batch in results]
                # Identical queries in one batch must agree with each other
                # and with one quiesced state.
                if any(row != rows[0] for row in rows) or rows[0] not in legal_single:
                    failures.append(rows)
                    return

        threads = [threading.Thread(target=batch_reader, daemon=True) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(FLIPS // 2):
                system.add_picture(FLIPPED)
                system.remove_picture("flip-target")
        finally:
            stop.set()
        for thread in threads:
            thread.join(timeout=30)
        assert not failures, f"batch mixed two snapshots: {failures[0]}"
        assert done[0] > 0


class TestZeroDowntimeReload:
    def test_hot_swap_is_atomic_to_readers(self):
        """Readers vs repeated hot swaps between two engine generations.

        ``RetrievalSystem.hot_swap`` is the primitive behind the service's
        ``POST /reload``: it replaces the whole engine under the existing
        readers-writer lock.  Every ranking observed while swaps are in
        flight must be byte-identical to one generation or the other —
        queries never block on a rebuild and never see a blend.
        """
        system = build_system().enable_concurrent_access()
        legal = [
            snapshot(build_system(), "similarity"),
            snapshot(build_system([FLIPPED]), "similarity"),
        ]
        assert legal[0] != legal[1]

        stop = threading.Event()
        failures = []
        counts = [0] * READERS
        readers = [
            threading.Thread(
                target=hammer,
                args=(system, legal, "similarity", stop, failures, counts, index),
                daemon=True,
            )
            for index in range(READERS)
        ]
        for thread in readers:
            thread.start()
        try:
            for flip in range(FLIPS):
                extra = [FLIPPED] if flip % 2 == 0 else []
                system.hot_swap(build_system(extra))
        finally:
            stop.set()
        for thread in readers:
            thread.join(timeout=30)
        assert not failures, f"torn read across hot swap: {failures[0]}"
        assert sum(counts) > 0, "readers never completed a query"
        # FLIPS is even, so the final generation is the base one.
        assert snapshot(system, "similarity") == legal[0]
