"""Replica subsystem tests: the tailing engine, the write fence, promotion.

The primary side is driven in-process -- a :class:`RetrievalSystem` over a
durable shard directory plus the same :class:`DurableShardedStore` the
daemon uses -- so every test asserts the replica against the exact state the
primary acknowledged, ranking-for-ranking.
"""

import time

import pytest

from repro.datasets.scenes import landscape_scene, office_scene, traffic_scene
from repro.index.backends import DurableShardedStore
from repro.retrieval.system import RetrievalSystem
from repro.service.client import ServiceClient, ServiceError
from repro.service.replica import ReplicaEngine, ReplicaService, create_replica_server
from repro.service.server import ApiError, RetrievalService


def collection():
    return (
        [office_scene(variant) for variant in range(3)]
        + [traffic_scene(variant) for variant in range(3)]
        + [landscape_scene(variant) for variant in range(2)]
    )


PROBES = [office_scene(0), traffic_scene(1), landscape_scene(0)]


def rankings(system):
    """Full-ranking JSONL per probe scene -- byte-comparable across systems."""
    return [
        system.query(scene).limit(None).execute().to_jsonl() for scene in PROBES
    ]


def upsert(system, store, picture, image_id):
    """One acknowledged primary write: engine mutation plus its log record.

    Replace-on-conflict, like the daemon's ``POST /images``.
    """
    if image_id in system._engine.database:
        system.remove_picture(image_id)
    system.add_picture(picture, image_id)
    return store.log_upsert(system._engine.database.get(image_id))


def delete(system, store, image_id):
    """One acknowledged primary delete."""
    system.remove_picture(image_id)
    return store.log_delete(image_id)


@pytest.fixture()
def primary(tmp_path):
    """A durable directory with its in-process primary (system + store)."""
    path = tmp_path / "primary.shards"
    system = RetrievalSystem.from_pictures(collection())
    system.save(path, durable=True)
    store = DurableShardedStore(system._engine.database, path)
    try:
        yield path, system, store
    finally:
        store.close()


class TestReplicaEngine:
    def test_warm_start_matches_primary(self, primary):
        path, system, _ = primary
        replica = ReplicaEngine(path)
        assert replica.applied_lsn == 0
        assert len(replica.system) == len(system)
        assert rankings(replica.system) == rankings(system)

    def test_warm_start_covers_unapplied_log_tail(self, primary):
        path, system, store = primary
        upsert(system, store, office_scene(5).renamed("tail-office"), "tail-office")
        replica = ReplicaEngine(path)
        # The load replayed the pending record; the cursor starts past it.
        assert replica.applied_lsn == store.last_lsn == 1
        assert rankings(replica.system) == rankings(system)
        assert replica.sync() == 0

    def test_sync_applies_upserts_and_deletes_byte_identically(self, primary):
        path, system, store = primary
        replica = ReplicaEngine(path)
        upsert(system, store, office_scene(6).renamed("new-office"), "new-office")
        upsert(system, store, traffic_scene(5).renamed("new-traffic"), "new-traffic")
        delete(system, store, "office-001")
        upsert(system, store, office_scene(6).renamed("new-office"), "new-office")
        assert replica.sync() == 4
        assert replica.applied_lsn == store.last_lsn == 4
        assert replica.records_applied == 4
        assert len(replica.system) == len(system)
        assert rankings(replica.system) == rankings(system)

    def test_sync_when_caught_up_is_a_cheap_noop(self, primary):
        path, _, _ = primary
        replica = ReplicaEngine(path)
        assert replica.sync() == 0
        assert replica.sync() == 0
        assert replica.syncs == 2
        assert replica.records_applied == 0
        assert replica.lag_records == 0
        assert replica.lag_seconds == 0.0

    def test_compaction_past_the_replica_reloads_the_snapshot(self, primary):
        path, system, store = primary
        replica = ReplicaEngine(path)
        upsert(system, store, office_scene(7).renamed("pre-compact"), "pre-compact")
        delete(system, store, "traffic-000")
        store.compact()
        upsert(system, store, landscape_scene(5).renamed("post-compact"), "post-compact")
        advanced = replica.sync()
        assert replica.snapshot_reloads == 1
        # The reload covers at least the compacted prefix; one more sync
        # picks up whatever the reload's own replay did not already cover.
        replica.sync()
        assert advanced >= 2
        assert replica.applied_lsn == store.last_lsn
        assert rankings(replica.system) == rankings(system)

    def test_detach_freezes_the_engine(self, primary):
        path, system, store = primary
        replica = ReplicaEngine(path)
        replica.detach()
        assert replica.detached
        upsert(system, store, office_scene(8).renamed("after-detach"), "after-detach")
        assert replica.sync() == 0
        assert replica.applied_lsn == 0

    def test_drain_applies_the_whole_backlog(self, primary):
        path, system, store = primary
        replica = ReplicaEngine(path)
        for variant in range(4):
            image_id = f"drain-{variant}"
            upsert(system, store, office_scene(variant).renamed(image_id), image_id)
        assert replica.drain() == 4
        assert replica.lag_records == 0
        assert rankings(replica.system) == rankings(system)

    def test_replication_stats_shape(self, primary):
        path, system, store = primary
        replica = ReplicaEngine(path)
        upsert(system, store, office_scene(9).renamed("stats-probe"), "stats-probe")
        replica.sync()
        stats = replica.replication_stats()
        assert stats["applied_lsn"] == stats["primary_lsn"] == 1
        assert stats["lag_records"] == 0
        assert stats["lag_seconds"] == 0.0
        assert stats["records_applied"] == 1
        assert stats["snapshot_reloads"] == 0
        assert stats["syncs"] == 1
        assert stats["detached"] is False

    def test_non_durable_directory_is_rejected(self, tmp_path):
        path = tmp_path / "plain.shards"
        RetrievalSystem.from_pictures(collection()).save(path)
        with pytest.raises(ValueError, match="not a durable database"):
            ReplicaEngine(path)


@pytest.fixture()
def replica_service(primary):
    """A ReplicaService following the primary fixture (fast follow interval)."""
    path, _, _ = primary
    service = ReplicaService(
        ReplicaEngine(path),
        workers=2,
        follow_interval=0.05,
        primary_url="http://127.0.0.1:9999",
    )
    try:
        yield service
    finally:
        service.close()


def wait_for(condition, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if condition():
            return True
        time.sleep(interval)
    return False


class TestReplicaService:
    def test_write_fence_names_the_primary(self, replica_service):
        scene = office_scene(0)
        for call in [
            lambda: replica_service.add_image({"scene": scene.to_dict()}),
            lambda: replica_service.delete_image("office-0"),
            lambda: replica_service.reload(),
            lambda: replica_service.compact(),
        ]:
            with pytest.raises(ApiError) as excinfo:
                call()
            assert excinfo.value.status == 403
            assert "http://127.0.0.1:9999" in excinfo.value.message

    def test_healthz_and_stats_report_role_and_replication(self, replica_service):
        assert replica_service.healthz()["role"] == "replica"
        stats = replica_service.stats()
        assert stats["role"] == "replica"
        replication = stats["replication"]
        assert replication["primary_url"] == "http://127.0.0.1:9999"
        assert replication["follow_interval"] == 0.05
        assert replication["detached"] is False
        assert replication["sync_errors"] == 0
        assert stats["images"] == len(collection())

    def test_follower_thread_catches_up_in_background(self, primary, replica_service):
        _, system, store = primary
        before = len(replica_service.system)
        upsert(system, store, office_scene(4).renamed("followed"), "followed")
        assert wait_for(lambda: len(replica_service.system) == before + 1)
        assert rankings(replica_service.system) == rankings(system)

    def test_promote_drains_detaches_and_lifts_the_fence(self, primary, replica_service):
        _, system, store = primary
        upsert(system, store, traffic_scene(6).renamed("pre-promote"), "pre-promote")
        store.close()  # fence the old primary before promoting
        summary = replica_service.promote()
        assert summary["role"] == "primary"
        assert summary["applied_lsn"] == 1
        assert replica_service.role == "primary"
        assert replica_service.replica.detached
        assert "pre-promote" in replica_service.system._engine.database
        # The fence is lifted and writes are durable (acked with an LSN).
        body = replica_service.add_image(
            {"scene": office_scene(5).to_dict(), "image_id": "post-promote"}
        )
        assert body["lsn"] == 2
        assert replica_service.healthz()["role"] == "primary"

    def test_second_promote_conflicts(self, primary, replica_service):
        _, _, store = primary
        store.close()
        replica_service.promote()
        with pytest.raises(ApiError) as excinfo:
            replica_service.promote()
        assert excinfo.value.status == 409

    def test_base_service_has_nothing_to_promote(self):
        service = RetrievalService(
            RetrievalSystem.from_pictures(collection()), workers=1
        )
        try:
            with pytest.raises(ApiError) as excinfo:
                service.promote()
            assert excinfo.value.status == 409
        finally:
            service.close()


class TestReplicaOverHttp:
    @pytest.fixture()
    def server(self, primary):
        path, _, _ = primary
        server = create_replica_server(path, port=0, workers=2, follow_interval=0.05)
        with server:
            yield server.start_background()

    @pytest.fixture()
    def client(self, server):
        client = ServiceClient(port=server.port)
        client.wait_until_healthy(timeout=10)
        return client

    def test_read_surface_matches_an_in_process_reference(self, client):
        reference = RetrievalSystem.from_pictures(collection())
        scene = office_scene(0)
        served = client.search(scene, limit=None)
        expected = reference.query(scene).limit(None).execute()
        assert served["results"] == expected.to_dicts()
        batch = client.batch([traffic_scene(0), landscape_scene(1)])
        for row, probe in zip(batch["results"], [traffic_scene(0), landscape_scene(1)]):
            assert row == reference.query(probe).execute().to_dicts()

    def test_mutations_rejected_with_403_and_primary_address(self, client, primary):
        path, _, _ = primary
        with pytest.raises(ServiceError) as excinfo:
            client.images.add(office_scene(0), image_id="nope")
        assert excinfo.value.status == 403
        assert str(path) in str(excinfo.value)
        with pytest.raises(ServiceError) as excinfo:
            client.images.delete("office-0")
        assert excinfo.value.status == 403

    def test_stats_carry_the_replication_block(self, client):
        stats = client.stats()
        assert stats["role"] == "replica"
        assert stats["replication"]["applied_lsn"] == 0
        assert stats["durability"]["enabled"] is False

    def test_promote_over_http_enables_writes(self, client, primary):
        _, system, store = primary
        upsert(system, store, office_scene(6).renamed("handover"), "handover")
        store.close()
        summary = client.admin.promote()
        assert summary["role"] == "primary"
        assert summary["applied_lsn"] == 1
        body = client.images.add(traffic_scene(4), image_id="after-promote")
        assert body["lsn"] == 2
        assert client.health()["role"] == "primary"
        with pytest.raises(ServiceError) as excinfo:
            client.admin.promote()
        assert excinfo.value.status == 409
