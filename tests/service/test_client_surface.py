"""The redesigned :class:`ServiceClient` surface, end to end.

Covers the three pieces of the client redesign:

* ``client.search(spec)`` / ``client.batch(specs)`` accept ``QuerySpec``
  values directly and compile them to the wire schema — byte-identical to
  the equivalent keyword calls;
* mutations and operations live on typed resources (``client.images``,
  ``client.admin``) and observability on ``client.stats()`` /
  ``client.health()``;
* the old flat methods (``add_image``, ``delete_image``, ``promote``,
  ``healthz``) are deprecation shims that delegate byte-identically.

The shim assertions need the warnings to *fire*, so this module opts out of
the suite-wide ``error::DeprecationWarning`` promotion and catches them
explicitly with ``pytest.warns``.
"""

import pytest

from repro.core.transforms import Transformation
from repro.datasets.scenes import landscape_scene, office_scene, traffic_scene
from repro.index.execution import ExecutionOptions
from repro.index.spec import QuerySpec
from repro.retrieval.predicates import parse_query
from repro.retrieval.system import RetrievalSystem
from repro.service.client import ServiceClient, _spec_payload
from repro.service.server import create_server

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def collection():
    return (
        [office_scene(variant) for variant in range(3)]
        + [traffic_scene(variant) for variant in range(3)]
        + [landscape_scene(variant) for variant in range(2)]
    )


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    database_path = tmp_path_factory.mktemp("surface") / "served.json"
    system = RetrievalSystem.from_pictures(collection())
    system.save(database_path)
    server = create_server(
        system, port=0, workers=4, backlog=8, database_path=database_path
    )
    with server:
        yield server.start_background()


@pytest.fixture(scope="module")
def client(server):
    client = ServiceClient(port=server.port)
    client.wait_until_healthy(timeout=10)
    return client


class TestSpecSearch:
    """``client.search(QuerySpec)`` equals the explicit keyword call."""

    def test_similarity_spec_matches_keyword_call(self, client):
        spec = QuerySpec(picture=office_scene(0), limit=5, minimum_score=0.1)
        via_spec = client.search(spec)
        via_kwargs = client.search(office_scene(0), limit=5, min_score=0.1)
        assert via_spec["results"] == via_kwargs["results"]
        assert via_spec["total"] == via_kwargs["total"]

    def test_invariant_spec_sets_the_flag(self, client):
        spec = QuerySpec(
            picture=traffic_scene(1), transformations=tuple(Transformation), limit=4
        )
        via_spec = client.search(spec)
        via_kwargs = client.search(traffic_scene(1), invariant=True, limit=4)
        assert via_spec["results"] == via_kwargs["results"]
        assert "invariant" in via_spec["spec"]

    def test_predicate_spec_compiles_to_where_text(self, client):
        picture = office_scene(0)
        first, second = sorted(set(picture.labels))[:2]
        predicates = tuple(parse_query(f"{first} left-of {second}"))
        spec = QuerySpec(predicates=predicates, limit=None)
        via_spec = client.search(spec)
        via_kwargs = client.search(where=f"{first} left-of {second}", limit=None)
        assert via_spec["results"] == via_kwargs["results"]

    def test_graded_spec_compiles_to_nested_wire_form(self, client):
        from repro.retrieval.predicates import parse_tree

        tree = parse_tree("monitor above desk [fuzzy] or not phone inside desk")
        spec = QuerySpec(
            picture=office_scene(0),
            predicate_tree=tree,
            predicate_composition="sum",
            predicate_blend=0.4,
            limit=None,
        )
        payload = _spec_payload(spec)
        assert payload["where"] == tree.to_dict()
        assert payload["compose"] == "sum"
        assert payload["blend"] == 0.4
        via_spec = client.search(spec)
        via_kwargs = client.search(
            office_scene(0), where=tree.to_dict(), compose="sum", blend=0.4, limit=None
        )
        assert via_spec["results"] == via_kwargs["results"]
        assert via_spec["results"]  # the graded ranking is non-empty

    def test_product_composition_omits_blend(self):
        from repro.retrieval.predicates import parse_tree

        spec = QuerySpec(
            predicate_tree=parse_tree("monitor above desk [fuzzy]"), limit=None
        )
        payload = _spec_payload(spec)
        assert payload["compose"] == "product"
        assert "blend" not in payload

    def test_execution_options_travel_the_wire(self, client):
        spec = QuerySpec(
            picture=office_scene(2),
            execution=ExecutionOptions(kernel="bitparallel", strategy="anytime"),
            limit=3,
        )
        via_spec = client.search(spec)
        plain = client.search(office_scene(2), limit=3)
        assert via_spec["results"] == plain["results"]

    def test_spec_search_paginates(self, client):
        spec = QuerySpec(picture=office_scene(0), limit=None)
        page = client.search(spec, page=1, page_size=2)
        assert page["page"] == 1
        assert page["page_size"] == 2
        assert len(page["results"]) == 2

    def test_batch_accepts_specs_scenes_and_dicts(self, client):
        specs = [
            QuerySpec(picture=office_scene(0), limit=3),
            QuerySpec(picture=traffic_scene(0), limit=3),
        ]
        batched = client.batch(specs)
        singles = [client.search(spec) for spec in specs]
        assert batched["results"] == [single["results"] for single in singles]
        mixed = client.batch(
            [specs[0], office_scene(1), {"scene": office_scene(2).to_dict()}]
        )
        assert len(mixed["results"]) == 3


class TestSpecPayloadCompilation:
    """Specs that the wire schema cannot carry fail loudly, client-side."""

    def test_partial_transformation_set_is_rejected(self):
        spec = QuerySpec(
            picture=office_scene(0),
            transformations=(Transformation.IDENTITY, Transformation.ROTATE_90),
        )
        with pytest.raises(ValueError, match="invariant"):
            _spec_payload(spec)

    def test_disabled_cache_is_rejected(self):
        spec = QuerySpec(picture=office_scene(0), use_cache=False)
        with pytest.raises(ValueError, match="score cache"):
            _spec_payload(spec)

    def test_non_default_shortlist_threshold_is_rejected(self):
        spec = QuerySpec(picture=office_scene(0), minimum_shared_labels=2)
        with pytest.raises(ValueError, match="minimum_shared_labels"):
            _spec_payload(spec)

    def test_custom_similarity_policy_is_rejected(self):
        # The wire schema has no policy field: compiling silently would make
        # the server score under its default policy, returning differently
        # ranked results than the caller's spec asked for.
        from repro.core.similarity import SimilarityPolicy

        spec = QuerySpec(
            picture=office_scene(0),
            policy=SimilarityPolicy(count_boundaries_only=True),
        )
        with pytest.raises(ValueError, match="policy"):
            _spec_payload(spec)

    def test_identity_only_compiles_to_non_invariant(self):
        payload = _spec_payload(QuerySpec(picture=office_scene(0)))
        assert payload["invariant"] is False

    def test_full_set_compiles_to_invariant(self):
        payload = _spec_payload(
            QuerySpec(picture=office_scene(0), transformations=tuple(Transformation))
        )
        assert payload["invariant"] is True


class TestResources:
    def test_images_add_and_delete_roundtrip(self, client):
        added = client.images.add(landscape_scene(1), "surface-resource")
        assert added["image_id"] == "surface-resource"
        ranking = client.search(landscape_scene(1), limit=2)
        assert "surface-resource" in [row["image_id"] for row in ranking["results"]]
        removed = client.images.delete("surface-resource")
        assert removed["removed"] == "surface-resource"

    def test_admin_reload_succeeds_with_database_path(self, client):
        body = client.admin.reload()
        assert body["images"] == len(collection())

    def test_admin_compact_requires_wal_mode(self, client):
        from repro.service.client import ServiceError

        with pytest.raises(ServiceError) as excinfo:
            client.admin.compact()
        assert excinfo.value.status == 409

    def test_admin_promote_requires_a_replica(self, client):
        from repro.service.client import ServiceError

        with pytest.raises(ServiceError) as excinfo:
            client.admin.promote()
        assert excinfo.value.status == 409

    def test_health_and_stats(self, client):
        health = client.health()
        assert health["status"] == "ok"
        stats = client.stats()
        assert stats["images"] == len(collection())


class TestDeprecatedShims:
    """Each flat method warns (pointing at the migration table) and delegates."""

    def test_add_image_and_delete_image_shims(self, client):
        with pytest.warns(DeprecationWarning, match=r"client\.images\.add"):
            added = client.add_image(landscape_scene(0), "surface-shim")
        assert added["image_id"] == "surface-shim"
        with pytest.warns(DeprecationWarning, match=r"client\.images\.delete"):
            removed = client.delete_image("surface-shim")
        assert removed["removed"] == "surface-shim"

    def test_promote_shim(self, client):
        from repro.service.client import ServiceError

        with pytest.warns(DeprecationWarning, match=r"client\.admin\.promote"):
            with pytest.raises(ServiceError) as excinfo:
                client.promote()
        assert excinfo.value.status == 409

    def test_healthz_shim_matches_health(self, client):
        with pytest.warns(DeprecationWarning, match=r"client\.health"):
            legacy = client.healthz()
        assert legacy["status"] == client.health()["status"]
        assert set(legacy) == set(client.health())

    def test_every_shim_cites_the_migration_table(self, client):
        with pytest.warns(DeprecationWarning, match=r"docs/query-api\.md"):
            client.healthz()
