"""Crash-safety acceptance tests: kill -9 a live durable service.

Thin pytest wrapper over the fault-injection harness in
``tools/faultinject.py``: each test boots a real ``repro serve --wal``
subprocess, SIGKILLs it at a chosen point — mid-POST or mid-compaction —
restarts it, and asserts that every acknowledged write survived and the
post-recovery rankings are byte-identical to an uninterrupted run.  The CI
``fault-injection`` job runs the full 20-trial sweep; these slow-marked
tests keep a smaller deterministic slice in the regular suite.
"""

import importlib.util
import random
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.slow

_HARNESS_PATH = Path(__file__).resolve().parents[2] / "tools" / "faultinject.py"


def _load_harness():
    spec = importlib.util.spec_from_file_location("faultinject", _HARNESS_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("faultinject", module)
    spec.loader.exec_module(module)
    return module


faultinject = _load_harness()


@pytest.fixture(scope="module")
def seed_dir(tmp_path_factory):
    """One durable seed database shared by every trial in this module."""
    scratch = tmp_path_factory.mktemp("faultinject-seed")
    return faultinject.build_seed(scratch)


def _assert_all_passed(results):
    failures = [
        f"trial {result.trial} ({result.kill_mode}): {'; '.join(result.failures)}"
        for result in results
        if not result.passed
    ]
    assert not failures, "\n".join(failures)
    # Every trial must have recovered a state covering all its acked writes.
    for result in results:
        assert result.survived >= result.acked


def test_kill_mid_post_loses_no_acked_write(tmp_path, seed_dir):
    """SIGKILL lands right after a randomly chosen acknowledgement."""
    rng = random.Random(101)
    results = [
        faultinject.run_trial(
            trial,
            tmp_path,
            seed_dir,
            rng=rng,
            compact_every=4,
            kill_mode="after-ack",
        )
        for trial in range(3)
    ]
    _assert_all_passed(results)
    assert sum(result.acked for result in results) > 0


def test_kill_during_compaction_recovers_identically(tmp_path, seed_dir):
    """SIGKILL lands while the background compactor is rewriting shards."""
    rng = random.Random(202)
    results = [
        faultinject.run_trial(
            trial,
            tmp_path,
            seed_dir,
            rng=rng,
            compact_every=3,
            kill_mode="during-compaction",
        )
        for trial in range(3)
    ]
    _assert_all_passed(results)


def test_randomized_kill_points(tmp_path, seed_dir):
    """A timer SIGKILL at a random offset — can land mid-POST or mid-fsync."""
    rng = random.Random(303)
    results = [
        faultinject.run_trial(
            trial,
            tmp_path,
            seed_dir,
            rng=rng,
            compact_every=4,
            kill_mode="random",
        )
        for trial in range(3)
    ]
    _assert_all_passed(results)


@pytest.mark.parametrize("kill_mode", ["kill-replica", "kill-primary", "kill-both"])
def test_replica_pair_survives_kill(tmp_path, seed_dir, kill_mode):
    """SIGKILL one (or both) of a primary+replica pair; they must reconverge.

    After recovery the replica's rankings must be byte-identical to the
    surviving primary state — or, when the primary died, to a reference run
    of the surviving acknowledged prefix.  The CI ``fault-injection`` job
    runs the full 20-trial replica sweep; this is the deterministic slice.
    """
    rng = random.Random(404)
    result = faultinject.run_replica_trial(
        0,
        tmp_path,
        seed_dir,
        rng=rng,
        compact_every=4,
        kill_mode=kill_mode,
    )
    _assert_all_passed([result])
