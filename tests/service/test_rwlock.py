"""Unit tests for the readers-writer lock behind the retrieval service."""

import threading
import time

import pytest

from repro.service.rwlock import ReadWriteLock


@pytest.fixture
def lock():
    return ReadWriteLock()


def run_thread(target):
    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return thread


class TestReadSide:
    def test_many_threads_read_concurrently(self, lock):
        inside = threading.Barrier(4, timeout=5)

        def reader():
            with lock.read_locked():
                inside.wait()  # only passes if all 4 hold the grant together

        threads = [run_thread(reader) for _ in range(4)]
        for thread in threads:
            thread.join(timeout=5)
        assert not any(thread.is_alive() for thread in threads)
        assert lock.active_readers == 0

    def test_read_reentrant_in_one_thread(self, lock):
        with lock.read_locked():
            with lock.read_locked():
                assert lock.active_readers == 1
            assert lock.active_readers == 1
        assert lock.active_readers == 0

    def test_release_without_acquire_raises(self, lock):
        with pytest.raises(RuntimeError):
            lock.release_read()

    def test_acquire_read_times_out_while_writer_holds(self, lock):
        lock.acquire_write()
        acquired = []
        thread = run_thread(lambda: acquired.append(lock.acquire_read(timeout=0.05)))
        thread.join(timeout=5)
        lock.release_write()
        assert acquired == [False]


class TestWriteSide:
    def test_writer_excludes_readers_and_writers(self, lock):
        events = []

        def reader():
            with lock.read_locked():
                events.append("read")

        with lock.write_locked():
            thread = run_thread(reader)
            time.sleep(0.05)
            assert events == []  # reader blocked while the writer holds
        thread.join(timeout=5)
        assert events == ["read"]

    def test_write_reentrant_in_one_thread(self, lock):
        with lock.write_locked():
            with lock.write_locked():
                assert lock.writer_active
        assert not lock.writer_active

    def test_upgrade_from_read_raises(self, lock):
        with lock.read_locked():
            with pytest.raises(RuntimeError, match="upgrade"):
                lock.acquire_write()

    def test_writer_may_take_nested_read(self, lock):
        with lock.write_locked():
            with lock.read_locked():
                assert lock.writer_active
        assert lock.active_readers == 0

    def test_release_write_by_non_writer_raises(self, lock):
        with pytest.raises(RuntimeError):
            lock.release_write()

    def test_acquire_write_times_out_while_reader_holds(self, lock):
        holding = threading.Event()
        release = threading.Event()

        def reader():
            with lock.read_locked():
                holding.set()
                release.wait(timeout=5)

        thread = run_thread(reader)
        assert holding.wait(timeout=5)
        assert lock.acquire_write(timeout=0.05) is False
        release.set()
        thread.join(timeout=5)
        assert lock.acquire_write(timeout=1) is True
        lock.release_write()


class TestWritePreference:
    def test_waiting_writer_blocks_new_readers(self, lock):
        """A queued writer gets the grant before readers that arrive later."""
        order = []

        def writer():
            with lock.write_locked():
                order.append("write")

        def late_reader():
            with lock.read_locked():
                order.append("read")

        lock.acquire_read()
        writer_thread = run_thread(writer)
        # Wait until the writer is queued, then send in a fresh reader.
        deadline = time.monotonic() + 5
        while lock.statistics()["writers_waiting"] == 0 and time.monotonic() < deadline:
            time.sleep(0.001)
        reader_thread = run_thread(late_reader)
        time.sleep(0.05)
        assert order == []  # writer waits on us; late reader waits on the writer
        lock.release_read()
        writer_thread.join(timeout=5)
        reader_thread.join(timeout=5)
        assert order[0] == "write"
        assert "read" in order

    def test_reentrant_read_admitted_past_waiting_writer(self, lock):
        """The deadlock case write preference must not introduce: a reader
        re-entering while a writer queues behind it must be admitted."""
        lock.acquire_read()
        writer = run_thread(lock.acquire_write)
        deadline = time.monotonic() + 5
        while lock.statistics()["writers_waiting"] == 0 and time.monotonic() < deadline:
            time.sleep(0.001)
        assert lock.acquire_read(timeout=1) is True  # reentrant, not blocked
        lock.release_read()
        lock.release_read()
        writer.join(timeout=5)
        assert lock.writer_active

    def test_statistics_counters(self, lock):
        with lock.read_locked():
            pass
        with lock.write_locked():
            pass
        stats = lock.statistics()
        assert stats["read_acquisitions"] == 1
        assert stats["write_acquisitions"] == 1
        assert stats["active_readers"] == 0
        assert stats["writers_waiting"] == 0
