"""End-to-end tests of the HTTP daemon: every endpoint over a real socket.

One module-scoped server is booted on an ephemeral port and driven with the
stdlib :class:`~repro.service.client.ServiceClient`; rankings are asserted
byte-identical (same ``to_dicts()`` rows, same JSONL text) to an in-process
reference system executing the same specs.
"""

import json

import pytest

from repro.datasets.scenes import landscape_scene, office_scene, traffic_scene
from repro.retrieval.system import RetrievalSystem
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import RetrievalService, create_server


def collection():
    return (
        [office_scene(variant) for variant in range(3)]
        + [traffic_scene(variant) for variant in range(3)]
        + [landscape_scene(variant) for variant in range(2)]
    )


@pytest.fixture()
def reference():
    """An in-process system holding the same images as the served one."""
    return RetrievalSystem.from_pictures(collection())


@pytest.fixture()
def server(tmp_path):
    database_path = tmp_path / "served.json"
    system = RetrievalSystem.from_pictures(collection())
    system.save(database_path)
    server = create_server(
        system, port=0, workers=4, backlog=8, database_path=database_path
    )
    with server:
        yield server.start_background()


@pytest.fixture()
def client(server):
    client = ServiceClient(port=server.port)
    client.wait_until_healthy(timeout=10)
    return client


class TestSearch:
    def test_rankings_byte_identical_to_in_process_engine(self, client, reference):
        for scene, kwargs in [
            (office_scene(0), {}),
            (office_scene(1), {"invariant": True}),
            (traffic_scene(2), {"min_score": 0.2, "limit": 3}),
            (landscape_scene(0), {"no_filters": True, "limit": None}),
        ]:
            served = client.search(scene, **kwargs)
            builder = reference.query(scene)
            builder.invariant(kwargs.get("invariant", False))
            builder.min_score(kwargs.get("min_score", 0.0))
            builder.limit(kwargs.get("limit", 10))
            builder.execution(shortlist=not kwargs.get("no_filters", False))
            expected = builder.execute()
            assert served["results"] == expected.to_dicts()
            assert (
                "\n".join(json.dumps(row, sort_keys=True) for row in served["results"])
                == expected.to_jsonl()
            )

    def test_partial_query(self, client, reference):
        scene = office_scene(0)
        identifiers = [icon.identifier for icon in list(scene)[:2]]
        served = client.search(scene, identifiers=identifiers)
        expected = reference.query(scene).partial(identifiers).execute()
        assert served["results"] == expected.to_dicts()

    def test_predicate_and_combined_queries(self, client, reference):
        predicate = "monitor above desk"
        served = client.search(where=predicate)
        expected = reference.query().where(predicate).execute()
        assert served["results"] == expected.to_dicts()
        combined = client.search(office_scene(0), where=predicate)
        expected_combined = (
            reference.query(office_scene(0)).where(predicate).execute()
        )
        assert combined["results"] == expected_combined.to_dicts()

    def test_pagination_windows_the_full_ranking(self, client, reference):
        scene = office_scene(0)
        full = reference.query(scene).limit(None).execution(shortlist=False).execute()
        pages = []
        page_number = 1
        while True:
            served = client.search(
                scene, limit=None, no_filters=True, page=page_number, page_size=3
            )
            assert served["total"] == len(full)
            pages.extend(served["results"])
            if page_number >= served["pages"]:
                break
            page_number += 1
        assert pages == full.to_dicts()

    def test_search_reports_plan_and_spec(self, client):
        served = client.search(office_scene(0))
        assert "scored" in served["plan"]
        assert "similar_to" in served["spec"]

    def test_execution_payload_rankings_match_reference(self, client, reference):
        scene = office_scene(0)
        expected = reference.query(scene).limit(5).execute()
        for execution in [
            {"kernel": "bitparallel"},
            {"strategy": "anytime"},
            {"kernel": "bitparallel", "strategy": "anytime"},
        ]:
            served = client.search(scene, limit=5, execution=execution)
            assert served["results"] == expected.to_dicts(), execution

    def test_explicit_execution_wins_over_no_filters(self, client, reference):
        scene = office_scene(0)
        served = client.search(
            scene, limit=None, no_filters=True, execution={"shortlist": True}
        )
        expected = reference.query(scene).limit(None).execute()
        assert served["results"] == expected.to_dicts()

    def test_malformed_execution_is_a_400(self, client):
        for execution in [{"kernel": "simd"}, {"turbo": True}, "anytime"]:
            with pytest.raises(ServiceError) as excinfo:
                client.request(
                    "POST",
                    "/search",
                    {"scene": office_scene(0).to_dict(), "execution": execution},
                )
            assert excinfo.value.status == 400
            assert "execution" in str(excinfo.value)

    def test_empty_spec_is_a_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.request("POST", "/search", {"limit": 3})
        assert excinfo.value.status == 400
        assert "clause" in str(excinfo.value)

    def test_malformed_knobs_are_400s(self, client):
        for payload in [
            {"scene": office_scene(0).to_dict(), "limit": -1},
            {"scene": office_scene(0).to_dict(), "invariant": "yes"},
            {"scene": office_scene(0).to_dict(), "min_score": "high"},
            {"scene": office_scene(0).to_dict(), "page": 1},  # page without size
            {"scene": {"nonsense": True}},
            {"scene": office_scene(0).to_dict(), "where": "desk wibble monitor"},
            [1, 2, 3],
        ]:
            with pytest.raises(ServiceError) as excinfo:
                client.request("POST", "/search", payload)
            assert excinfo.value.status == 400


class TestGradedWire:
    """The graded predicate surface over the wire: strings, trees, knobs."""

    def test_fuzzy_string_where_matches_reference(self, client, reference):
        served = client.search(where="monitor above desk", fuzzy=True, limit=None)
        expected = (
            reference.query().where("monitor above desk", fuzzy=True).limit(None).execute()
        )
        assert served["results"] == expected.to_dicts()
        assert served["results"][0]["degree"] == 1.0
        assert "leaf_degrees" in served["results"][0]

    def test_boolean_grammar_over_the_wire(self, client, reference):
        text = "not (phone right-of monitor) or monitor above desk [fuzzy w=2]"
        served = client.search(where=text, limit=None)
        expected = reference.query().where(text).limit(None).execute()
        assert served["results"] == expected.to_dicts()

    def test_nested_tree_payload_matches_string_form(self, client, reference):
        text = "monitor above desk [fuzzy] or not phone inside desk"
        from repro.retrieval.predicates import parse_tree

        tree = parse_tree(text)
        served = client.search(where=tree.to_dict(), limit=None)
        expected = reference.query().where(text).limit(None).execute()
        assert served["results"] == expected.to_dicts()

    def test_combined_compose_knobs(self, client, reference):
        scene = office_scene(0)
        served = client.search(
            scene, where="monitor above desk", fuzzy=True,
            compose="sum", blend=0.3, limit=None,
        )
        expected = (
            reference.query(scene)
            .where("monitor above desk", fuzzy=True)
            .compose("sum", 0.3)
            .limit(None)
            .execute()
        )
        assert served["results"] == expected.to_dicts()

    def test_malformed_graded_payloads_are_400s(self, client):
        cases = [
            ({"where": "car banana tree"}, "banana"),
            ({"where": "(car left-of tree"}, "position"),
            ({"where": {"op": "nand", "children": []}}, "nand"),
            ({"where": 7}, "where"),
            ({"fuzzy": True}, "fuzzy"),
            ({"where": "monitor above desk", "fuzzy": "yes"}, "fuzzy"),
            ({"where": "monitor above desk", "compose": "max"}, "'max'"),
            ({"where": "monitor above desk", "compose": 1}, "compose"),
            ({"where": "monitor above desk", "blend": 0.5}, "blend"),
            (
                {"where": "monitor above desk", "compose": "sum", "blend": 2.0},
                "blend",
            ),
        ]
        for payload, token in cases:
            with pytest.raises(ServiceError) as excinfo:
                client.request("POST", "/search", payload)
            assert excinfo.value.status == 400, payload
            assert token in str(excinfo.value), payload

    def test_stats_reports_predicate_counters(self, reference):
        service = RetrievalService(reference)
        for payload in [
            {"where": "monitor above desk"},
            {"where": "monitor above desk", "fuzzy": True},
        ]:
            status, _, _ = service.dispatch("POST", "/search", payload)
            assert status == 200
        predicates = service.stats()["predicates"]
        assert predicates["queries"] == 2
        assert predicates["graded_queries"] == 1
        assert predicates["evaluated"] > 0
        assert 0.0 <= predicates["pruned_fraction"] <= 1.0

    def test_batch_rejects_graded_queries(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.request(
                "POST",
                "/batch",
                {"queries": [{"where": "monitor above desk", "fuzzy": True}]},
            )
        assert excinfo.value.status == 400


class TestBatch:
    def test_batch_matches_serial_searches(self, client, reference):
        scenes = [office_scene(0), traffic_scene(1), office_scene(0)]
        served = client.batch(scenes, workers=2)
        assert served["count"] == 3
        for row, scene in zip(served["results"], scenes):
            assert row == reference.query(scene).execute().to_dicts()
        assert "unique evaluations" in served["report"]

    def test_batch_rejects_predicates_and_empty(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.request(
                "POST", "/batch", {"queries": [{"where": "monitor above desk"}]}
            )
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client.request("POST", "/batch", {"queries": []})
        assert excinfo.value.status == 400

    def test_batch_rejects_bad_executor(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.batch([office_scene(0)], executor="quantum")
        assert excinfo.value.status == 400


class TestMutations:
    def test_insert_search_delete_roundtrip_with_persistence(
        self, client, server, tmp_path
    ):
        fresh = office_scene(7).renamed("fresh-image")
        created = client.images.add(fresh)
        assert created["image_id"] == "fresh-image"

        served = client.search(fresh, limit=1)
        assert served["results"][0]["image_id"] == "fresh-image"
        assert served["results"][0]["score"] == pytest.approx(1.0)

        # The mutation was persisted incrementally: a reload sees the image.
        reloaded = RetrievalSystem.from_file(server.service.database_path)
        assert "fresh-image" in reloaded.image_ids

        removed = client.images.delete("fresh-image")
        assert removed["removed"] == "fresh-image"
        reloaded = RetrievalSystem.from_file(server.service.database_path)
        assert "fresh-image" not in reloaded.image_ids

    def test_duplicate_insert_is_409(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.images.add(office_scene(0))  # office-000 already stored
        assert excinfo.value.status == 409

    def test_unknown_delete_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.images.delete("never-stored")
        assert excinfo.value.status == 404

    def test_mutation_invalidates_served_rankings(self, client):
        """A cached query must re-rank after an insert changes the answer."""
        probe = office_scene(2)
        before = client.search(probe, limit=1)
        clone = probe.renamed("office-clone")
        client.images.add(clone)
        after = client.search(probe, limit=2)
        ids = [row["image_id"] for row in after["results"]]
        assert "office-clone" in ids
        client.images.delete("office-clone")
        again = client.search(probe, limit=1)
        assert again["results"] == before["results"]


class TestObservability:
    def test_healthz_reports_image_count_and_uptime(self, client, server):
        body = client.health()
        assert body["status"] == "ok"
        assert body["images"] == len(server.service.system)
        assert body["uptime_seconds"] >= 0

    def test_stats_counts_requests_and_latency(self, client):
        client.search(office_scene(0))
        client.search(office_scene(0))
        stats = client.stats()
        assert stats["requests"]["POST /search"] >= 2
        assert stats["requests_total"] >= stats["requests"]["POST /search"]
        assert stats["latency_ms"]["p50"] <= stats["latency_ms"]["p95"]
        assert 0.0 <= stats["cache"]["hit_rate"] <= 1.0
        assert stats["lock"]["read_acquisitions"] > 0

    def test_repeated_search_hits_the_score_cache(self, client):
        scene = traffic_scene(0)
        client.search(scene)
        before = client.stats()["cache"]["hits"]
        client.search(scene)
        assert client.stats()["cache"]["hits"] > before

    def test_ping_measures_round_trip(self, client):
        body = client.ping()
        assert body["status"] == "ok"
        assert body["round_trip_ms"] >= 0

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.request("GET", "/never/existed")
        assert excinfo.value.status == 404

    def test_unreachable_service_raises(self):
        client = ServiceClient(port=1, timeout=0.2)  # nothing listens there
        with pytest.raises(ServiceError, match="unreachable"):
            client.health()


class TestBackpressure:
    def test_admission_gate_rejects_with_503_and_retry_after(self, reference):
        service = RetrievalService(reference, workers=1, backlog=0, retry_after=2.0)
        # Fill the only admission slot, then ask for work: bounded queue full.
        assert service._admission.acquire(blocking=False)
        try:
            status, body, headers = service.dispatch(
                "POST", "/search", {"scene": office_scene(0).to_dict()}
            )
        finally:
            service._admission.release()
        assert status == 503
        assert headers["Retry-After"] == "2"
        assert "overloaded" in body["error"]
        assert service.stats()["rejected_overload"] == 1

    def test_probes_bypass_the_admission_gate(self, reference):
        service = RetrievalService(reference, workers=1, backlog=0)
        assert service._admission.acquire(blocking=False)
        try:
            status, body, _ = service.dispatch("GET", "/healthz", None)
            assert status == 200 and body["status"] == "ok"
            status, _, _ = service.dispatch("GET", "/stats", None)
            assert status == 200
        finally:
            service._admission.release()

    def test_admission_gate_validates_knobs(self, reference):
        with pytest.raises(ValueError):
            RetrievalService(reference, workers=0)
        with pytest.raises(ValueError):
            RetrievalService(reference, backlog=-1)


class TestWireEdgeCases:
    """Regressions for wire-level edge cases found in review."""

    def test_image_ids_with_unsafe_characters_roundtrip(self, client):
        for image_id in ("has space", "slash/inside", "café", "q?a#b"):
            created = client.images.add(office_scene(7), image_id=image_id)
            assert created["image_id"] == image_id
            removed = client.images.delete(image_id)
            assert removed["removed"] == image_id

    def test_batch_with_unknown_identifier_is_400_not_500(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.request(
                "POST",
                "/batch",
                {"queries": [{"scene": office_scene(0).to_dict(), "identifiers": ["nope"]}]},
            )
        assert excinfo.value.status == 400
        assert "identifier" in str(excinfo.value)

    def test_malformed_content_length_is_400(self, server):
        import http.client

        connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=5)
        try:
            connection.putrequest("POST", "/search")
            connection.putheader("Content-Length", "abc")
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 400
            assert b"Content-Length" in response.read()
        finally:
            connection.close()

    def test_delete_without_id_is_400(self, reference):
        service = RetrievalService(reference)
        for path in ("/images", "/images/"):
            status, body, _ = service.dispatch("DELETE", path, None)
            assert status == 400
            assert "image id is required" in body["error"]


class TestPercentile:
    """Exact nearest-rank values at small window sizes (regression for the
    banker's-rounding off-by-one at even window sizes)."""

    @pytest.mark.parametrize(
        ("values", "fraction", "expected"),
        [
            ([10.0], 0.5, 10.0),
            ([10.0], 0.95, 10.0),
            ([10.0, 20.0], 0.5, 10.0),
            ([10.0, 20.0], 0.95, 20.0),
            ([10.0, 20.0, 30.0], 0.5, 20.0),
            ([10.0, 20.0, 30.0], 0.95, 30.0),
            # Four samples: round(0.5 * 3) == 2 under banker's rounding used
            # to report the *third* value as the median.
            ([10.0, 20.0, 30.0, 40.0], 0.5, 20.0),
            ([10.0, 20.0, 30.0, 40.0], 0.95, 40.0),
            ([10.0, 20.0], 0.0, 10.0),
            ([10.0, 20.0], 1.0, 20.0),
        ],
    )
    def test_nearest_rank(self, values, fraction, expected):
        from repro.service.server import _percentile

        assert _percentile(values, fraction) == expected

    def test_stats_latency_summary_uses_nearest_rank(self, tmp_path):
        system = RetrievalSystem.from_pictures(collection())
        service = RetrievalService(system)
        # Inject a deterministic latency window (seconds) behind the lock.
        with service._stats_lock:
            service._latencies.extend([0.010, 0.020, 0.030, 0.040])
        latency = service.stats()["latency_ms"]
        assert latency["count"] == 4
        assert latency["p50"] == pytest.approx(20.0)
        assert latency["p95"] == pytest.approx(40.0)
        assert latency["max"] == pytest.approx(40.0)

    def test_stats_reports_shortlist_counters(self, tmp_path):
        system = RetrievalSystem.from_pictures(collection())
        service = RetrievalService(system)
        status, _, _ = service.dispatch(
            "POST",
            "/search",
            {"scene": office_scene(0).to_dict(), "min_score": 0.6},
        )
        assert status == 200
        shortlist = service.stats()["shortlist"]
        assert shortlist["queries"] >= 1
        assert shortlist["candidates"] == (
            shortlist["admitted"]
            + shortlist["bitmap_rejected"]
            + shortlist["relation_rejected"]
        )
        assert 0.0 <= shortlist["pruned_fraction"] <= 1.0

    def test_stats_reports_execution_counters(self, tmp_path):
        system = RetrievalSystem.from_pictures(collection())
        service = RetrievalService(system)
        status, _, _ = service.dispatch(
            "POST",
            "/search",
            {
                "scene": office_scene(0).to_dict(),
                "limit": 3,
                "execution": {"strategy": "anytime"},
            },
        )
        assert status == 200
        execution = service.stats()["execution"]
        assert execution["queries"] >= 1
        assert execution["anytime_queries"] >= 1
        assert execution["admitted"] == execution["examined"] + execution["skipped"]
        assert 0.0 <= execution["examined_fraction"] <= 1.0
