"""Client retry tests against a deliberately flaky stub server.

The stub accepts real TCP connections and slams the first N shut before
sending a status line -- exactly the transport failure mode
``ServiceClient(..., retries=...)`` is meant to absorb.  HTTP-level errors
(the server *answered*) must never be retried, so the stub can also answer
every connection with a fixed error status and prove the attempt count
stays at one.
"""

import socket
import threading

import pytest

from repro.service import client as client_module
from repro.service.client import ServiceClient, ServiceError


class FlakyServer:
    """A TCP stub: drop the first ``failures`` connections, then answer."""

    def __init__(self, failures=0, status=200, body=b'{"status": "ok"}', headers=""):
        self.failures = failures
        self.status = status
        self.body = body
        self.headers = headers
        self.attempts = 0
        self._closed = False
        self._socket = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._socket.bind(("127.0.0.1", 0))
        self._socket.listen(16)
        self.port = self._socket.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while True:
            try:
                connection, _ = self._socket.accept()
            except OSError:
                return  # listening socket closed
            if self._closed:
                connection.close()
                return
            self.attempts += 1
            if self.attempts <= self.failures:
                # Shut the connection before any status line: the client
                # sees a transport failure, not an HTTP response.
                connection.close()
                continue
            try:
                connection.recv(65536)
                reason = {200: "OK", 503: "Service Unavailable"}.get(self.status, "Error")
                connection.sendall(
                    (
                        f"HTTP/1.1 {self.status} {reason}\r\n"
                        "Content-Type: application/json\r\n"
                        f"Content-Length: {len(self.body)}\r\n"
                        f"{self.headers}"
                        "Connection: close\r\n\r\n"
                    ).encode("ascii")
                    + self.body
                )
            except OSError:
                pass
            finally:
                connection.close()

    def close(self):
        self._closed = True
        # accept() does not reliably wake when the listening socket closes
        # under it; poke one throwaway connection through to unblock it.
        try:
            socket.create_connection(("127.0.0.1", self.port), timeout=1).close()
        except OSError:
            pass
        try:
            self._socket.close()
        finally:
            self._thread.join(timeout=5)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


def make_client(server, **kwargs):
    kwargs.setdefault("backoff", 0.01)
    return ServiceClient(port=server.port, timeout=5, **kwargs)


class TestTransportRetries:
    def test_retries_absorb_dropped_connections(self):
        with FlakyServer(failures=2) as server:
            body = make_client(server, retries=2).health()
            assert body == {"status": "ok"}
            assert server.attempts == 3

    def test_budget_exhausted_surfaces_the_transport_error(self):
        with FlakyServer(failures=3) as server:
            with pytest.raises(ServiceError) as excinfo:
                make_client(server, retries=1).health()
            assert excinfo.value.status is None
            assert server.attempts == 2

    def test_default_is_fail_fast(self):
        with FlakyServer(failures=1) as server:
            with pytest.raises(ServiceError) as excinfo:
                make_client(server).health()
            assert excinfo.value.status is None
            assert server.attempts == 1

    def test_connection_refused_is_retried_until_the_budget_runs_out(self):
        # Reserve a port with no listener at all: every attempt is refused.
        placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        placeholder.bind(("127.0.0.1", 0))
        port = placeholder.getsockname()[1]
        placeholder.close()
        client = ServiceClient(port=port, timeout=1, retries=2, backoff=0.01)
        with pytest.raises(ServiceError) as excinfo:
            client.health()
        assert excinfo.value.status is None


class TestHttpErrorsAreFinal:
    def test_5xx_is_never_retried(self):
        with FlakyServer(
            status=503,
            body=b'{"error": "overloaded"}',
            headers="Retry-After: 1.5\r\n",
        ) as server:
            with pytest.raises(ServiceError) as excinfo:
                make_client(server, retries=5).health()
            assert excinfo.value.status == 503
            assert excinfo.value.retry_after == 1.5
            assert server.attempts == 1

    def test_success_after_flaky_start_keeps_error_semantics(self):
        # One drop, then a clean 200: the retry path returns the parsed body
        # without masking later HTTP errors behind extra attempts.
        with FlakyServer(failures=1) as server:
            client = make_client(server, retries=3)
            assert client.health() == {"status": "ok"}
            assert server.attempts == 2


class TestBackoffSchedule:
    def test_sleeps_double_and_cap(self, monkeypatch):
        recorded = []
        monkeypatch.setattr(client_module.time, "sleep", recorded.append)
        with FlakyServer(failures=3) as server:
            client = make_client(server, retries=3, backoff=0.5, backoff_cap=1.2)
            assert client.health() == {"status": "ok"}
        assert recorded == [0.5, 1.0, 1.2]

    def test_parameters_are_validated(self):
        with pytest.raises(ValueError, match="retries"):
            ServiceClient(retries=-1)
        with pytest.raises(ValueError, match="backoff"):
            ServiceClient(backoff=0)
        with pytest.raises(ValueError, match="backoff"):
            ServiceClient(backoff_cap=-1)

    def test_from_url_threads_retries_through(self):
        client = ServiceClient.from_url("http://127.0.0.1:8123", retries=4)
        assert client.retries == 4
        assert client.port == 8123
