"""Unit tests for the corpus evaluation runner."""

import pytest

from repro.baselines.type_similarity import SimilarityType
from repro.datasets.corpus import Corpus
from repro.geometry.rectangle import Rectangle
from repro.iconic.picture import SymbolicPicture
from repro.retrieval.evaluation import (
    EvaluationReport,
    MethodEvaluation,
    be_string_method,
    evaluate_corpus,
    type_similarity_method,
)


@pytest.fixture
def tiny_corpus():
    base = SymbolicPicture.build(
        width=50,
        height=50,
        objects=[
            ("a", Rectangle(0, 0, 10, 10)),
            ("b", Rectangle(20, 0, 30, 10)),
            ("c", Rectangle(0, 20, 10, 30)),
        ],
        name="base",
    )
    shuffled = SymbolicPicture.build(
        width=50,
        height=50,
        objects=[
            ("a", Rectangle(30, 30, 45, 45)),
            ("b", Rectangle(0, 20, 10, 30)),
            ("c", Rectangle(20, 0, 30, 10)),
        ],
        name="shuffled",
    )
    unrelated = SymbolicPicture.build(
        width=50,
        height=50,
        objects=[("z", Rectangle(5, 5, 15, 15))],
        name="unrelated",
    )
    query = base.subset(["a", "b"]).renamed("query-ab")
    return Corpus(
        name="tiny",
        database_pictures=[base, shuffled, unrelated],
        queries=[query],
        relevance={"query-ab": {"base"}},
    )


class TestMethods:
    def test_be_string_method_ranks_base_first(self, tiny_corpus):
        method = be_string_method()
        ranked = method(tiny_corpus.queries[0], tiny_corpus.database_pictures)
        assert ranked[0] == "base"
        assert set(ranked) == {"base", "shuffled", "unrelated"}
        assert method.__name__ == "be_string"

    def test_invariant_method_has_distinct_name(self):
        assert be_string_method(invariant=True).__name__ == "be_string_invariant"

    def test_type_similarity_method(self, tiny_corpus):
        method = type_similarity_method(SimilarityType.TYPE_1)
        ranked = method(tiny_corpus.queries[0], tiny_corpus.database_pictures)
        assert ranked[0] == "base"
        assert method.__name__ == "type1_clique"


class TestEvaluateCorpus:
    def test_report_structure(self, tiny_corpus):
        report = evaluate_corpus(
            tiny_corpus,
            {"be": be_string_method(), "clique": type_similarity_method()},
            cutoffs=(1, 2),
        )
        assert isinstance(report, EvaluationReport)
        assert set(report.methods) == {"be", "clique"}
        for evaluation in report.methods.values():
            assert set(evaluation.per_query) == {"query-ab"}
            aggregated = evaluation.aggregate()
            assert aggregated["precision@1"] == 1.0
            assert aggregated["total_seconds"] >= 0.0

    def test_table_rendering(self, tiny_corpus):
        report = evaluate_corpus(tiny_corpus, {"be": be_string_method()}, cutoffs=(1,))
        table = report.table(metrics=("precision@1",))
        lines = table.splitlines()
        assert lines[0].startswith("method")
        assert any(line.startswith("be") for line in lines[1:])

    def test_empty_method_evaluation_aggregate(self):
        evaluation = MethodEvaluation(method_name="noop", total_seconds=1.5)
        assert evaluation.aggregate() == {"total_seconds": 1.5}
