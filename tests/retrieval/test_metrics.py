"""Unit tests for ranked-retrieval metrics."""

import pytest

from repro.retrieval.metrics import (
    average_precision,
    f1_score,
    mean_average_precision,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
    summarize_query,
)


RANKED = ["a", "b", "c", "d", "e"]


class TestPrecisionRecall:
    def test_precision_at_k(self):
        assert precision_at_k(RANKED, {"a", "c"}, 1) == 1.0
        assert precision_at_k(RANKED, {"a", "c"}, 2) == 0.5
        assert precision_at_k(RANKED, {"a", "c"}, 4) == 0.5
        assert precision_at_k([], {"a"}, 3) == 0.0

    def test_precision_uses_actual_list_length_when_short(self):
        assert precision_at_k(["a"], {"a"}, 10) == 1.0

    def test_recall_at_k(self):
        assert recall_at_k(RANKED, {"a", "c"}, 1) == 0.5
        assert recall_at_k(RANKED, {"a", "c"}, 3) == 1.0
        assert recall_at_k(RANKED, set(), 3) == 0.0

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            precision_at_k(RANKED, {"a"}, 0)
        with pytest.raises(ValueError):
            recall_at_k(RANKED, {"a"}, 0)

    def test_f1(self):
        assert f1_score(0.5, 0.5) == pytest.approx(0.5)
        assert f1_score(0.0, 0.0) == 0.0
        assert f1_score(1.0, 0.5) == pytest.approx(2 / 3)


class TestAveragePrecision:
    def test_perfect_ranking(self):
        assert average_precision(["a", "b", "x", "y"], {"a", "b"}) == pytest.approx(1.0)

    def test_relevant_at_end(self):
        assert average_precision(["x", "y", "a"], {"a"}) == pytest.approx(1 / 3)

    def test_missing_relevant_counts_against(self):
        assert average_precision(["a"], {"a", "b"}) == pytest.approx(0.5)

    def test_no_relevant(self):
        assert average_precision(RANKED, set()) == 0.0

    def test_mean_average_precision(self):
        value = mean_average_precision(
            [["a", "x"], ["x", "b"]], [{"a"}, {"b"}]
        )
        assert value == pytest.approx((1.0 + 0.5) / 2)

    def test_mean_average_precision_empty(self):
        assert mean_average_precision([], []) == 0.0


class TestReciprocalRank:
    def test_first_hit_position(self):
        assert reciprocal_rank(["x", "a", "y"], {"a"}) == pytest.approx(0.5)
        assert reciprocal_rank(["a"], {"a"}) == 1.0
        assert reciprocal_rank(["x", "y"], {"a"}) == 0.0


class TestSummarize:
    def test_summary_contains_all_cutoffs(self):
        summary = summarize_query(RANKED, {"a", "d"}, cutoffs=(1, 3))
        assert set(summary) == {
            "average_precision",
            "reciprocal_rank",
            "precision@1",
            "recall@1",
            "precision@3",
            "recall@3",
        }
        assert summary["precision@1"] == 1.0
        assert summary["recall@3"] == 0.5
