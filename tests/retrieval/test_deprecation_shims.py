"""The legacy ``search*`` surface: warns, and stays byte-identical.

Every pre-redesign ``RetrievalSystem`` entry point must (a) emit a
``DeprecationWarning`` naming its replacement and (b) return rankings
identical -- including tie-break ordering -- to the equivalent fluent-builder
query.  The suite-wide ``filterwarnings = error::DeprecationWarning`` rule
(``pyproject.toml``) guarantees no *internal* code path still calls the old
surface; this module is the one place the old surface is exercised on
purpose, hence the targeted ignore.
"""

import pytest

from repro.index.batch import BatchOptions
from repro.index.query import Query
from repro.retrieval.system import RetrievalSystem

#: This module deliberately calls the deprecated surface.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def result_key(results):
    """Everything a ranked result list is judged on, including tie-breaks."""
    return [
        (r.rank, r.image_id, r.score, r.similarity.transformation, r.similarity.common_objects)
        for r in results
    ]


@pytest.fixture
def system(scene_collection):
    return RetrievalSystem.from_pictures(scene_collection)


class TestEveryShimWarns:
    def test_search_warns(self, system, office):
        with pytest.warns(DeprecationWarning, match="query"):
            system.search(office)

    def test_search_many_warns(self, system, office):
        with pytest.warns(DeprecationWarning, match="query_batch"):
            system.search_many([office])

    def test_search_parallel_warns(self, system, office):
        with pytest.warns(DeprecationWarning, match="query_batch"):
            system.search_parallel([office], workers=2)

    def test_run_batch_warns(self, system, office):
        with pytest.warns(DeprecationWarning, match="query_batch"):
            system.run_batch([Query.exact(office, limit=3)])

    def test_search_partial_warns(self, system, office):
        with pytest.warns(DeprecationWarning, match="partial"):
            system.search_partial(office, ["desk"])

    def test_search_by_relations_warns(self, system):
        with pytest.warns(DeprecationWarning, match="where"):
            system.search_by_relations("monitor above desk")

    def test_warning_points_at_migration_docs(self, system, office):
        with pytest.warns(DeprecationWarning, match="docs/query-api.md"):
            system.search(office)


class TestByteIdenticalEquivalence:
    """The old call and its builder equivalent agree entry for entry."""

    def test_exact_search(self, system, office):
        old = system.search(office, limit=None)
        new = system.query(office).limit(None).execute()
        assert result_key(old) == result_key(new)

    def test_search_with_knobs(self, system, office):
        old = system.search(
            office, limit=3, minimum_score=0.2, use_filters=False
        )
        new = (
            system.query(office).limit(3).min_score(0.2).no_filters().execute()
        )
        assert result_key(old) == result_key(new)

    def test_invariant_search(self, system, office):
        system.add_picture(office.rotate90().renamed("office-rotated"))
        old = system.search(office, limit=None, invariant=True, use_filters=False)
        new = (
            system.query(office).invariant().limit(None).no_filters().execute()
        )
        assert result_key(old) == result_key(new)

    def test_partial_search(self, system, office):
        identifiers = ["desk", "monitor", "phone"]
        old = system.search_partial(office, identifiers, limit=None)
        new = system.query(office).partial(identifiers).limit(None).execute()
        assert result_key(old) == result_key(new)

    def test_partial_search_forwards_minimum_score_and_filters(self, system, office):
        # Regression: these knobs used to be silently dropped by the shim.
        thresholded = system.search_partial(
            office, ["desk", "monitor"], limit=None, minimum_score=0.9
        )
        assert thresholded and all(r.score >= 0.9 for r in thresholded)
        unfiltered = system.search_partial(
            office, ["desk", "monitor"], limit=None, use_filters=False
        )
        # Without the label filters every stored image is scored.
        assert len(unfiltered) == len(system)

    def test_predicate_search(self, system):
        query_text = "monitor above desk and phone right-of monitor"
        old = system.search_by_relations(query_text, limit=None)
        new = system.query().where(query_text).limit(None).execute()
        assert [(m.image_id, m.score, m.satisfied, m.unsatisfied) for m in old] == [
            (m.image_id, m.score, m.satisfied, m.unsatisfied) for m in new
        ]

    def test_predicate_search_with_limit_and_threshold(self, system):
        old = system.search_by_relations("monitor above desk", limit=2, minimum_score=0.5)
        new = (
            system.query().where("monitor above desk").limit(2).min_score(0.5).execute()
        )
        assert [(m.image_id, m.score) for m in old] == [(m.image_id, m.score) for m in new]

    def test_tie_break_ordering(self, office):
        system = RetrievalSystem.from_pictures(
            [office.renamed(f"copy-{index}") for index in range(5)]
        )
        old = system.search(office, limit=None)
        new = system.query(office).limit(None).execute()
        assert [r.image_id for r in old] == [f"copy-{index}" for index in range(5)]
        assert result_key(old) == result_key(new)

    def test_batch_shims(self, system, scene_collection):
        pictures = [scene_collection[0], scene_collection[3], scene_collection[0]]
        specs = [system.query(picture).limit(4) for picture in pictures]
        expected = [
            [result_key(results) for results in system.query_batch(specs)],
        ][0]
        old_many = system.search_many(pictures, limit=4)
        old_parallel = system.search_parallel(pictures, limit=4, workers=2)
        assert [result_key(r) for r in old_many] == expected
        assert [result_key(r) for r in old_parallel] == expected

    def test_run_batch_shim(self, system, office, traffic):
        queries = [Query.exact(office, limit=3), Query.invariant(traffic, limit=2)]
        old = system.run_batch(queries, workers=2, executor="thread")
        new = system.query_batch(queries, workers=2, executor="thread")
        assert [result_key(r) for r in old] == [result_key(r) for r in new]
        assert all(isinstance(results, list) for results in old)


class TestBuilderKnobShims:
    """The old builder knobs: warn, and behave like execution(...)."""

    def test_filters_warns(self, system, office):
        with pytest.warns(DeprecationWarning, match=r"execution\(shortlist"):
            system.query(office).filters(False)

    def test_no_filters_warns(self, system, office):
        with pytest.warns(DeprecationWarning, match=r"execution\(shortlist=False\)"):
            system.query(office).no_filters()

    def test_cached_warns(self, system, office):
        with pytest.warns(DeprecationWarning, match=r"execution\(cache"):
            system.query(office).cached(False)

    def test_no_filters_matches_execution_shortlist_false(self, system, office):
        old = system.query(office).limit(None).no_filters().execute()
        new = (
            system.query(office).limit(None).execution(shortlist=False).execute()
        )
        assert result_key(old) == result_key(new)
        assert len(old) == len(system)  # every stored image was scored

    def test_cached_false_matches_execution_cache_false(self, system, office):
        old = system.query(office).limit(None).cached(False).execute()
        new = system.query(office).limit(None).execution(cache=False).execute()
        assert result_key(old) == result_key(new)

    def test_deprecated_knob_reflected_in_spec(self, system, office):
        spec = system.query(office).no_filters().cached(False).spec()
        assert spec.use_filters is False
        assert spec.use_cache is False
        assert spec.execution.shortlist is False
        assert spec.execution.cache is False


class TestQueryBatchOptionsShim:
    """``query_batch(options=BatchOptions(...))`` warns and still works."""

    def test_options_warns(self, system, office):
        with pytest.warns(DeprecationWarning, match=r"execution=ExecutionOptions"):
            system.query_batch(
                [system.query(office).limit(3)],
                options=BatchOptions(workers=2, executor="thread"),
            )

    def test_options_matches_execution(self, system, scene_collection):
        pictures = [scene_collection[0], scene_collection[3]]
        specs = [system.query(picture).limit(4) for picture in pictures]
        old = system.query_batch(
            [system.query(picture).limit(4) for picture in pictures],
            options=BatchOptions(workers=2, executor="thread"),
        )
        new = system.query_batch(specs, workers=2, executor="thread")
        assert [result_key(r) for r in old] == [result_key(r) for r in new]
