"""Unit tests for the relation-predicate query language."""

import pytest

from repro.core.construct import encode_picture
from repro.geometry.rectangle import Rectangle
from repro.iconic.picture import SymbolicPicture
from repro.retrieval.predicates import (
    And,
    Leaf,
    Not,
    Or,
    PredicateError,
    RelationKeyword,
    RelationPredicate,
    evaluate_predicates,
    evaluate_tree,
    flat_predicates,
    is_crisp_conjunction,
    parse_predicate,
    parse_query,
    parse_tree,
    search_by_predicates,
    tree_from_dict,
    zero_graded_match,
)
from repro.retrieval.system import RetrievalSystem


@pytest.fixture
def street():
    return SymbolicPicture.build(
        width=100,
        height=60,
        objects=[
            ("car", Rectangle(10, 5, 40, 20)),
            ("tree", Rectangle(60, 5, 80, 35)),
            ("cloud", Rectangle(30, 45, 70, 55)),
            ("bird", Rectangle(62, 20, 68, 25)),
        ],
        name="street",
    )


class TestParsing:
    def test_parse_simple_predicate(self):
        predicate = parse_predicate("car left-of tree")
        assert predicate == RelationPredicate("car", RelationKeyword.LEFT_OF, "tree")

    def test_parse_aliases(self):
        assert parse_predicate("a left_of b").relation is RelationKeyword.LEFT_OF
        assert parse_predicate("a over b").relation is RelationKeyword.ABOVE
        assert parse_predicate("a within b").relation is RelationKeyword.INSIDE

    def test_parse_rejects_wrong_arity(self):
        with pytest.raises(PredicateError):
            parse_predicate("car left-of")
        with pytest.raises(PredicateError):
            parse_predicate("car is left-of tree")

    def test_parse_rejects_unknown_relation(self):
        with pytest.raises(PredicateError):
            parse_predicate("car sort-of-near tree")

    def test_parse_query_conjunction(self):
        predicates = parse_query("car left-of tree and cloud above car, bird inside tree")
        assert len(predicates) == 3
        assert predicates[2].relation is RelationKeyword.INSIDE

    def test_parse_query_empty(self):
        with pytest.raises(PredicateError):
            parse_query("   ")

    def test_to_text_roundtrip(self):
        predicate = parse_predicate("cloud above car")
        assert parse_predicate(predicate.to_text()) == predicate


class TestEvaluation:
    def test_directional_predicates(self, street):
        bestring = encode_picture(street)
        match = evaluate_predicates(
            bestring,
            parse_query(
                "car left-of tree and tree right-of car and cloud above car and car below cloud"
            ),
        )
        assert match.is_full_match
        assert match.score == 1.0

    def test_unsatisfied_predicates_are_reported(self, street):
        bestring = encode_picture(street)
        match = evaluate_predicates(
            bestring, parse_query("tree left-of car and cloud above car")
        )
        assert match.score == pytest.approx(0.5)
        assert [predicate.to_text() for predicate in match.unsatisfied] == ["tree left-of car"]
        assert "tree left-of car" in match.describe()

    def test_topological_predicates(self, street):
        bestring = encode_picture(street)
        match = evaluate_predicates(
            bestring,
            parse_query("bird inside tree and tree contains bird and bird overlaps tree"),
        )
        assert match.is_full_match

    def test_missing_label_fails_the_predicate(self, street):
        bestring = encode_picture(street)
        match = evaluate_predicates(bestring, parse_query("car left-of spaceship"))
        assert match.score == 0.0
        assert not match.is_full_match

    def test_same_row_and_column(self, street):
        bestring = encode_picture(street)
        match = evaluate_predicates(
            bestring, parse_query("car same-row tree and tree same-column cloud")
        )
        assert match.is_full_match

    def test_any_instance_satisfies(self, landscape):
        # The landscape has two trees; the predicate holds if either does.
        bestring = encode_picture(landscape)
        match = evaluate_predicates(bestring, parse_query("tree left-of mountain"))
        assert match.is_full_match


class TestTreeParsing:
    def test_flat_conjunction_parses_as_before(self):
        tree = parse_tree("car left-of tree and cloud above car")
        assert isinstance(tree, And)
        assert flat_predicates(tree) == tuple(
            parse_query("car left-of tree and cloud above car")
        )
        assert is_crisp_conjunction(tree)

    def test_precedence_not_binds_tightest_or_loosest(self):
        tree = parse_tree("not a left-of b and b above c or c inside d")
        assert isinstance(tree, Or)
        left, right = tree.children
        assert isinstance(left, And)
        assert isinstance(left.children[0], Not)
        assert isinstance(right, Leaf)

    def test_parentheses_override_precedence(self):
        tree = parse_tree("not (a left-of b or b above c)")
        assert isinstance(tree, Not)
        assert isinstance(tree.child, Or)

    def test_annotations(self):
        leaf = parse_tree("car left-of tree [fuzzy w=2.5]")
        assert isinstance(leaf, Leaf)
        assert leaf.fuzzy and leaf.weight == 2.5
        assert leaf.to_text() == "car left-of tree [fuzzy w=2.5]"

    def test_reserved_words_cannot_be_labels(self):
        with pytest.raises(PredicateError, match="reserved word"):
            parse_tree("car left-of and")

    def test_errors_name_token_and_position(self):
        with pytest.raises(PredicateError, match="position 4: 'banana'"):
            parse_tree("car banana tree")
        with pytest.raises(PredicateError, match="trailing token"):
            parse_tree("car left-of tree )")
        with pytest.raises(PredicateError, match="weight must be positive"):
            parse_tree("car left-of tree [w=0]")

    def test_normalization_flattens_and_sorts(self):
        tree = parse_tree("(b above c and a left-of b) and a left-of b")
        normalized = tree.normalized()
        assert isinstance(normalized, And)
        # Flattened, sorted, duplicates kept (they weigh in the mean twice).
        assert [child.to_text() for child in normalized.children] == [
            "a left-of b",
            "a left-of b",
            "b above c",
        ]
        assert Not(Not(parse_tree("a inside b"))).normalized() == parse_tree("a inside b")

    def test_graded_features_defeat_the_crisp_fast_path(self):
        assert not is_crisp_conjunction(parse_tree("a left-of b [fuzzy]"))
        assert not is_crisp_conjunction(parse_tree("a left-of b [w=2]"))
        assert not is_crisp_conjunction(parse_tree("not a left-of b"))
        assert not is_crisp_conjunction(parse_tree("a left-of b or c above d"))


class TestGradedEvaluation:
    def test_crisp_leaf_is_a_boolean_indicator(self, street):
        bestring = encode_picture(street)
        assert evaluate_tree(bestring, parse_tree("car left-of tree")).degree == 1.0
        assert evaluate_tree(bestring, parse_tree("tree left-of car")).degree == 0.0

    def test_fuzzy_near_miss_scores_below_any_crisp_match(self, street):
        bestring = encode_picture(street)
        # The bird sits *inside* the tree's vertical span, so "bird below
        # tree" fails crisply -- but only by a small boundary distance, so
        # graded it lands strictly inside (0, 1).  A hopeless miss (the
        # cloud far above the car) still bottoms out at 0.
        near = evaluate_tree(bestring, parse_tree("bird below tree [fuzzy]")).degree
        assert 0.0 < near < 1.0
        far = evaluate_tree(bestring, parse_tree("cloud below car [fuzzy]")).degree
        assert far == 0.0

    def test_fuzzy_exact_when_crisp_holds(self, street):
        bestring = encode_picture(street)
        assert evaluate_tree(bestring, parse_tree("car left-of tree [fuzzy]")).degree == 1.0

    def test_not_is_the_complement(self, street):
        bestring = encode_picture(street)
        inner = evaluate_tree(bestring, parse_tree("cloud below car [fuzzy]")).degree
        outer = evaluate_tree(bestring, parse_tree("not cloud below car [fuzzy]")).degree
        assert outer == pytest.approx(1.0 - inner)

    def test_or_is_the_maximum(self, street):
        bestring = encode_picture(street)
        tree = parse_tree("tree left-of car or car left-of tree")
        assert evaluate_tree(bestring, tree).degree == 1.0

    def test_and_is_the_weighted_mean(self, street):
        bestring = encode_picture(street)
        # One holds (1.0), one fails (0.0); weight 3 on the failing leaf.
        tree = parse_tree("car left-of tree and tree left-of car [w=3]")
        assert evaluate_tree(bestring, tree).degree == pytest.approx(0.25)

    def test_crisp_conjunction_degree_matches_flat_score(self, street):
        bestring = encode_picture(street)
        text = "car left-of tree and tree left-of car and cloud above car"
        graded = evaluate_tree(bestring, parse_tree(text))
        flat = evaluate_predicates(bestring, parse_query(text))
        assert graded.degree == pytest.approx(flat.score)

    def test_absent_labels_grade_zero_and_not_fails_open(self, street):
        bestring = encode_picture(street)
        assert evaluate_tree(bestring, parse_tree("ghost inside car [fuzzy]")).degree == 0.0
        assert evaluate_tree(bestring, parse_tree("not ghost inside car")).degree == 1.0

    def test_leaf_degrees_are_surfaced(self, street):
        bestring = encode_picture(street)
        match = evaluate_tree(
            bestring, parse_tree("car left-of tree [fuzzy] and ghost inside car")
        )
        degrees = dict(match.leaf_degrees)
        assert degrees["car left-of tree [fuzzy]"] == 1.0
        assert degrees["ghost inside car"] == 0.0
        assert "degree" in match.describe()

    def test_zero_graded_match_synthesis(self):
        tree = parse_tree("a left-of b [fuzzy] or not a above b")
        match = zero_graded_match(tree, "img-x")
        assert match.image_id == "img-x"
        assert match.degree == 0.0
        assert dict(match.leaf_degrees) == {
            "a left-of b [fuzzy]": 0.0,
            "a above b": 0.0,
        }


class TestWireForms:
    def test_round_trip(self):
        tree = parse_tree("not (a left-of b [fuzzy w=2] or c inside d) and a above c")
        assert tree_from_dict(tree.to_dict()) == tree

    def test_leaf_defaults_are_omitted(self):
        payload = parse_tree("a left-of b").to_dict()
        assert payload == {"subject": "a", "relation": "left-of", "target": "b"}

    def test_rejects_malformed_payloads(self):
        with pytest.raises(PredicateError, match="unknown predicate operator 'nand'"):
            tree_from_dict({"op": "nand", "children": []})
        with pytest.raises(PredicateError, match="'child'"):
            tree_from_dict({"op": "not"})
        with pytest.raises(PredicateError, match="non-empty 'children'"):
            tree_from_dict({"op": "or", "children": []})
        with pytest.raises(PredicateError, match="string 'subject' and 'target'"):
            tree_from_dict({"subject": 3, "relation": "left-of", "target": "b"})
        with pytest.raises(PredicateError, match="unknown relation 'near'"):
            tree_from_dict({"subject": "a", "relation": "near", "target": "b"})
        with pytest.raises(PredicateError, match="'weight' must be a number"):
            tree_from_dict(
                {"subject": "a", "relation": "left-of", "target": "b", "weight": "2"}
            )
        with pytest.raises(PredicateError, match="must be a JSON object"):
            tree_from_dict(["op"])


class TestSearch:
    def test_search_ranks_full_matches_first(self, street, office):
        records = [
            ("street", encode_picture(street)),
            ("office", encode_picture(office)),
        ]
        matches = search_by_predicates(records, "car left-of tree")
        assert matches[0].image_id == "street"
        assert matches[0].is_full_match
        assert matches[-1].score < 1.0

    def test_search_minimum_score(self, street, office):
        records = [
            ("street", encode_picture(street)),
            ("office", encode_picture(office)),
        ]
        matches = search_by_predicates(records, "car left-of tree", minimum_score=0.99)
        assert [match.image_id for match in matches] == ["street"]

    def test_search_requires_predicates(self, street):
        with pytest.raises(PredicateError):
            search_by_predicates([("street", encode_picture(street))], [])

    def test_retrieval_system_facade(self, scene_collection):
        system = RetrievalSystem.from_pictures(scene_collection)
        matches = (
            system.query()
            .where("monitor above desk and phone right-of monitor")
            .limit(None)
            .execute()
        )
        office_matches = [match for match in matches if match.image_id.startswith("office")]
        other_matches = [match for match in matches if not match.image_id.startswith("office")]
        assert office_matches[0].score == 1.0
        assert all(match.score == 0.0 for match in other_matches)
        assert matches[0].image_id.startswith("office")
