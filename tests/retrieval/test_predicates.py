"""Unit tests for the relation-predicate query language."""

import pytest

from repro.core.construct import encode_picture
from repro.geometry.rectangle import Rectangle
from repro.iconic.picture import SymbolicPicture
from repro.retrieval.predicates import (
    PredicateError,
    RelationKeyword,
    RelationPredicate,
    evaluate_predicates,
    parse_predicate,
    parse_query,
    search_by_predicates,
)
from repro.retrieval.system import RetrievalSystem


@pytest.fixture
def street():
    return SymbolicPicture.build(
        width=100,
        height=60,
        objects=[
            ("car", Rectangle(10, 5, 40, 20)),
            ("tree", Rectangle(60, 5, 80, 35)),
            ("cloud", Rectangle(30, 45, 70, 55)),
            ("bird", Rectangle(62, 20, 68, 25)),
        ],
        name="street",
    )


class TestParsing:
    def test_parse_simple_predicate(self):
        predicate = parse_predicate("car left-of tree")
        assert predicate == RelationPredicate("car", RelationKeyword.LEFT_OF, "tree")

    def test_parse_aliases(self):
        assert parse_predicate("a left_of b").relation is RelationKeyword.LEFT_OF
        assert parse_predicate("a over b").relation is RelationKeyword.ABOVE
        assert parse_predicate("a within b").relation is RelationKeyword.INSIDE

    def test_parse_rejects_wrong_arity(self):
        with pytest.raises(PredicateError):
            parse_predicate("car left-of")
        with pytest.raises(PredicateError):
            parse_predicate("car is left-of tree")

    def test_parse_rejects_unknown_relation(self):
        with pytest.raises(PredicateError):
            parse_predicate("car sort-of-near tree")

    def test_parse_query_conjunction(self):
        predicates = parse_query("car left-of tree and cloud above car, bird inside tree")
        assert len(predicates) == 3
        assert predicates[2].relation is RelationKeyword.INSIDE

    def test_parse_query_empty(self):
        with pytest.raises(PredicateError):
            parse_query("   ")

    def test_to_text_roundtrip(self):
        predicate = parse_predicate("cloud above car")
        assert parse_predicate(predicate.to_text()) == predicate


class TestEvaluation:
    def test_directional_predicates(self, street):
        bestring = encode_picture(street)
        match = evaluate_predicates(
            bestring,
            parse_query(
                "car left-of tree and tree right-of car and cloud above car and car below cloud"
            ),
        )
        assert match.is_full_match
        assert match.score == 1.0

    def test_unsatisfied_predicates_are_reported(self, street):
        bestring = encode_picture(street)
        match = evaluate_predicates(
            bestring, parse_query("tree left-of car and cloud above car")
        )
        assert match.score == pytest.approx(0.5)
        assert [predicate.to_text() for predicate in match.unsatisfied] == ["tree left-of car"]
        assert "tree left-of car" in match.describe()

    def test_topological_predicates(self, street):
        bestring = encode_picture(street)
        match = evaluate_predicates(
            bestring,
            parse_query("bird inside tree and tree contains bird and bird overlaps tree"),
        )
        assert match.is_full_match

    def test_missing_label_fails_the_predicate(self, street):
        bestring = encode_picture(street)
        match = evaluate_predicates(bestring, parse_query("car left-of spaceship"))
        assert match.score == 0.0
        assert not match.is_full_match

    def test_same_row_and_column(self, street):
        bestring = encode_picture(street)
        match = evaluate_predicates(
            bestring, parse_query("car same-row tree and tree same-column cloud")
        )
        assert match.is_full_match

    def test_any_instance_satisfies(self, landscape):
        # The landscape has two trees; the predicate holds if either does.
        bestring = encode_picture(landscape)
        match = evaluate_predicates(bestring, parse_query("tree left-of mountain"))
        assert match.is_full_match


class TestSearch:
    def test_search_ranks_full_matches_first(self, street, office):
        records = [
            ("street", encode_picture(street)),
            ("office", encode_picture(office)),
        ]
        matches = search_by_predicates(records, "car left-of tree")
        assert matches[0].image_id == "street"
        assert matches[0].is_full_match
        assert matches[-1].score < 1.0

    def test_search_minimum_score(self, street, office):
        records = [
            ("street", encode_picture(street)),
            ("office", encode_picture(office)),
        ]
        matches = search_by_predicates(records, "car left-of tree", minimum_score=0.99)
        assert [match.image_id for match in matches] == ["street"]

    def test_search_requires_predicates(self, street):
        with pytest.raises(PredicateError):
            search_by_predicates([("street", encode_picture(street))], [])

    def test_retrieval_system_facade(self, scene_collection):
        system = RetrievalSystem.from_pictures(scene_collection)
        matches = (
            system.query()
            .where("monitor above desk and phone right-of monitor")
            .limit(None)
            .execute()
        )
        office_matches = [match for match in matches if match.image_id.startswith("office")]
        other_matches = [match for match in matches if not match.image_id.startswith("office")]
        assert office_matches[0].score == 1.0
        assert all(match.score == 0.0 for match in other_matches)
        assert matches[0].image_id.startswith("office")
