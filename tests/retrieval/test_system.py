"""Unit tests for the retrieval system facade."""

import pytest

from repro.geometry.rectangle import Rectangle
from repro.retrieval.system import RetrievalSystem


@pytest.fixture
def system(scene_collection):
    return RetrievalSystem.from_pictures(scene_collection)


class TestMaintenance:
    def test_from_pictures_and_len(self, system, scene_collection):
        assert len(system) == len(scene_collection)
        assert system.image_ids == sorted(p.name for p in scene_collection)

    def test_add_and_remove_picture(self, system, office):
        system.add_picture(office.renamed("extra"))
        assert "extra" in system.image_ids
        system.remove_picture("extra")
        assert "extra" not in system.image_ids

    def test_record_access_and_show(self, system, office):
        record = system.record(office.name)
        assert record.picture == office
        art = system.show(office.name)
        assert art.startswith("+")
        assert "legend" in art

    def test_statistics(self, system, scene_collection):
        stats = system.statistics()
        assert stats["images"] == len(scene_collection)

    def test_save_and_reload(self, system, tmp_path, office):
        path = system.save(tmp_path / "db.json")
        reloaded = RetrievalSystem.from_file(path)
        assert reloaded.image_ids == system.image_ids
        assert reloaded.query(office).limit(1).execute()[0].image_id == office.name


class TestDynamicObjectUpdates:
    def test_add_object_is_searchable(self, system, office):
        system.add_object(office.name, "mug", Rectangle(60, 46, 64, 50))
        record = system.record(office.name)
        assert record.picture.has_icon("mug")
        # The stored BE-string was refreshed and stays consistent.
        assert record.bestring.object_identifiers == set(record.picture.identifiers)

    def test_remove_object_updates_index(self, system, office):
        system.remove_object(office.name, "phone")
        record = system.record(office.name)
        assert not record.picture.has_icon("phone")
        query = office.subset(["phone"])
        results = system.query(query).limit(None).execute()
        result_ids = {result.image_id for result in results}
        # The edited image no longer shares the "phone" label, so the label
        # filter excludes it.
        assert office.name not in result_ids


class TestQuerySurface:
    def test_identical_image_ranks_first(self, system, office):
        results = system.query(office).execute()
        assert results[0].image_id == office.name
        assert results[0].score == pytest.approx(1.0)

    def test_limit(self, system, office):
        assert len(system.query(office).limit(2).execute()) <= 2

    def test_minimum_score(self, system, office):
        results = system.query(office).min_score(0.95).limit(None).execute()
        assert all(result.score >= 0.95 for result in results)

    def test_partial_search(self, system, office):
        results = (
            system.query(office).partial(["desk", "monitor", "phone"]).limit(3).execute()
        )
        assert results[0].image_id == office.name
        assert results[0].similarity.common_objects == {"desk", "monitor", "phone"}

    def test_invariant_search_finds_reflected_image(self, system, office):
        reflected = office.reflect_y().renamed("office-mirrored")
        system.add_picture(reflected)
        plain = system.query(office).limit(None).execution(shortlist=False).execute()
        invariant = (
            system.query(office).invariant().limit(None).execution(shortlist=False).execute()
        )
        plain_score = {r.image_id: r.score for r in plain}["office-mirrored"]
        invariant_score = {r.image_id: r.score for r in invariant}["office-mirrored"]
        assert invariant_score == pytest.approx(1.0)
        assert invariant_score > plain_score

    def test_repeated_serial_query_is_served_from_cache(self, system, office):
        system.query(office).limit(None).execute()
        before = system.cache_statistics()
        results = system.query(office).limit(None).execute()
        after = system.cache_statistics()
        # Every candidate score of the repeated query came from the cache:
        # no additional misses, one hit per candidate considered.
        assert after.misses == before.misses
        assert after.hits - before.hits == len(results)
