"""Tests for the fluent query builder, QuerySpec compilation and ResultSet."""

import json

import pytest

from repro.core.similarity import Normalization, SimilarityPolicy
from repro.core.transforms import Transformation
from repro.index.spec import QuerySpec, QuerySpecError
from repro.retrieval.predicates import (
    PredicateError,
    evaluate_tree,
    parse_tree,
    search_by_predicates,
)
from repro.retrieval.querybuilder import ResultSet
from repro.retrieval.system import RetrievalSystem


@pytest.fixture
def system(scene_collection):
    return RetrievalSystem.from_pictures(scene_collection)


class TestSpecCompilation:
    def test_builder_accumulates_all_clauses(self, system, office):
        spec = (
            system.query(office)
            .partial(["desk", "monitor"])
            .invariant()
            .where("phone right-of monitor")
            .min_score(0.3)
            .limit(7)
            .execution(shortlist=False)
            .execution(cache=False)
            .spec()
        )
        assert spec.picture is office
        assert spec.identifiers == ("desk", "monitor")
        assert spec.transformations == tuple(Transformation)
        assert [predicate.to_text() for predicate in spec.predicates] == [
            "phone right-of monitor"
        ]
        assert spec.limit == 7
        assert spec.minimum_score == 0.3
        assert not spec.use_filters
        assert not spec.use_cache

    def test_builder_defaults(self, system, office):
        spec = system.query(office).spec()
        assert spec.transformations == (Transformation.IDENTITY,)
        assert spec.limit == 10
        assert spec.use_filters and spec.use_cache
        assert spec.policy == system.policy

    def test_policy_override(self, system, office):
        policy = SimilarityPolicy(normalization=Normalization.NONE)
        results = system.query(office).policy(policy).execute()
        assert results[0].score > 1.0  # raw counts, not normalised

    def test_effective_picture_applies_subset(self, system, office):
        spec = system.query(office).partial(["desk"]).spec()
        assert set(spec.effective_picture().identifiers) == {"desk"}

    def test_empty_query_rejected(self, system):
        with pytest.raises(QuerySpecError):
            system.query().spec()

    def test_partial_without_picture_rejected(self):
        with pytest.raises(QuerySpecError):
            QuerySpec(identifiers=("desk",), predicates=()).validate()

    def test_negative_limit_rejected(self, system, office):
        with pytest.raises(QuerySpecError):
            system.query(office).limit(-1).spec()

    def test_malformed_predicate_text_raises(self, system):
        with pytest.raises(PredicateError):
            system.query().where("monitor hovering-near desk")

    def test_describe_names_clauses(self, system, office):
        spec = system.query(office).invariant().where("monitor above desk").spec()
        text = spec.describe()
        assert "similar_to" in text and "invariant" in text
        assert "where(monitor above desk)" in text


class TestExecutionEquivalence:
    def test_matches_engine_execute(self, system, office):
        builder_results = list(system.query(office).limit(None).execute())
        engine_results = system._engine.execute(
            system.query(office).limit(None).spec().to_query()
        )
        assert [r.describe() for r in builder_results] == [
            r.describe() for r in engine_results
        ]

    def test_predicate_only_matches_brute_force(self, system):
        query_text = "monitor above desk and phone right-of monitor"
        pruned = system.query().where(query_text).limit(None).execute()
        brute = search_by_predicates(
            (
                (record.image_id, record.bestring)
                for record in system._engine.database
            ),
            query_text,
        )
        assert [(m.image_id, m.score) for m in pruned] == [
            (m.image_id, m.score) for m in brute
        ]
        assert [m.satisfied for m in pruned] == [m.satisfied for m in brute]
        assert [m.unsatisfied for m in pruned] == [m.unsatisfied for m in brute]

    def test_predicate_pruning_skips_label_less_images(self, system):
        results = system.query().where("monitor above desk").limit(None).execute()
        trace = results.trace
        # Traffic and landscape scenes carry neither label: they must be
        # admitted as synthesised zero matches, not evaluated.
        assert trace.predicate_pruned > 0
        assert trace.predicate_evaluated + trace.predicate_pruned == len(system)
        pruned_ids = {
            candidate.image_id
            for candidate in trace.candidates.values()
            if candidate.stage == "label-pruned"
        }
        assert all(not image_id.startswith("office") for image_id in pruned_ids)

    def test_combined_mode_filters_similarity_ranking(self, system, office):
        plain = system.query(office).limit(None).execute()
        combined = (
            system.query(office).where("monitor above desk").limit(None).execute()
        )
        assert {r.image_id for r in combined} <= {r.image_id for r in plain}
        # Only office scenes have monitors and desks at all.
        assert all(r.image_id.startswith("office") for r in combined)
        # Ranks are renumbered contiguously after filtering.
        assert [r.rank for r in combined] == list(range(1, len(combined) + 1))

    def test_combined_mode_requires_every_predicate(self, system, office):
        combined = (
            system.query(office)
            .where("monitor above desk")
            .where("desk above monitor")  # contradiction: can never both hold
            .limit(None)
            .execute()
        )
        assert len(combined) == 0

    def test_warm_cache_serves_repeated_query(self, system, office):
        first = system.query(office).limit(None).execute()
        assert first.trace.cache_misses == len(first)
        second = system.query(office).limit(None).execute()
        assert second.trace.cache_hits == len(second)
        assert second.trace.cache_misses == 0
        assert [r.describe() for r in second] == [r.describe() for r in first]

    def test_cached_false_bypasses_the_cache(self, system, office):
        system.query(office).limit(None).execute()
        results = system.query(office).limit(None).execution(cache=False).execute()
        assert results.trace.cache_hits == 0
        assert results.trace.cache_misses == len(results)


class TestGradedQueries:
    def test_crisp_where_compiles_to_the_legacy_fast_path(self, system):
        # Order preserved, no tree: byte-identical to the historical plan.
        spec = (
            system.query()
            .where("phone right-of monitor and monitor above desk")
            .spec()
        )
        assert spec.predicate_tree is None
        assert [predicate.to_text() for predicate in spec.predicates] == [
            "phone right-of monitor",
            "monitor above desk",
        ]

    def test_graded_where_compiles_to_a_tree(self, system):
        spec = system.query().where("monitor above desk", fuzzy=True).spec()
        assert spec.predicates == ()
        assert spec.predicate_tree is not None
        assert spec.predicate_tree.to_text() == "monitor above desk [fuzzy]"
        spec = system.query().where("not monitor above desk or phone inside desk").spec()
        assert spec.predicate_tree is not None

    def test_compose_knobs_reach_the_spec(self, system, office):
        spec = (
            system.query(office)
            .where("monitor above desk", fuzzy=True)
            .compose("sum", 0.3)
            .spec()
        )
        assert spec.predicate_composition == "sum"
        assert spec.predicate_blend == 0.3
        with pytest.raises(QuerySpecError):
            system.query(office).where("monitor above desk", fuzzy=True).compose(
                "max"
            ).spec().validate()

    def test_fuzzy_results_superset_crisp_with_crisp_on_top(self, system, office):
        # The graded acceptance contract: fuzzifying a where-clause never
        # loses a crisp result, crisp matches keep degree exactly 1.0, and
        # every near-miss grades strictly below them.
        text = "monitor above desk and phone right-of monitor"
        crisp = system.query().where(text).limit(None).execute()
        graded = system.query().where(text, fuzzy=True).limit(None).execute()
        crisp_scores = {m.image_id: m.score for m in crisp}
        graded_scores = {m.image_id: m.score for m in graded}
        assert set(crisp_scores) <= set(graded_scores)
        full = {image_id for image_id, score in crisp_scores.items() if score == 1.0}
        assert full
        assert all(graded_scores[image_id] == 1.0 for image_id in full)
        assert all(
            graded_scores[image_id] < 1.0
            for image_id in graded_scores
            if image_id not in full
        )
        # Grading can only raise a score: the crisp indicator lower-bounds it.
        assert all(
            graded_scores[image_id] >= score
            for image_id, score in crisp_scores.items()
        )

    def test_combined_fuzzy_superset_of_crisp_filter(self, system, office):
        crisp = system.query(office).where("monitor above desk").limit(None).execute()
        graded = (
            system.query(office)
            .where("monitor above desk", fuzzy=True)
            .limit(None)
            .execute()
        )
        assert {r.image_id for r in crisp} <= {r.image_id for r in graded}
        assert [r.rank for r in graded] == list(range(1, len(graded) + 1))

    def test_product_composition_multiplies_similarity_by_degree(self, system, office):
        tree = parse_tree("monitor above desk [fuzzy]")
        similarities = {
            r.image_id: r.score for r in system.query(office).limit(None).execute()
        }
        graded = (
            system.query(office)
            .where("monitor above desk", fuzzy=True)
            .limit(None)
            .execute()
        )
        assert graded
        for result in graded:
            record = system._engine.database.get(result.image_id)
            degree = evaluate_tree(record.bestring, tree).degree
            assert result.score == pytest.approx(similarities[result.image_id] * degree)

    def test_sum_composition_blends(self, system, office):
        tree = parse_tree("monitor above desk [fuzzy]")
        similarities = {
            r.image_id: r.score for r in system.query(office).limit(None).execute()
        }
        graded = (
            system.query(office)
            .where("monitor above desk", fuzzy=True)
            .compose("sum", 0.3)
            .limit(None)
            .execute()
        )
        for result in graded:
            record = system._engine.database.get(result.image_id)
            degree = evaluate_tree(record.bestring, tree).degree
            expected = 0.3 * similarities[result.image_id] + 0.7 * degree
            assert result.score == pytest.approx(expected)

    def test_explain_surfaces_leaf_degrees(self, system):
        results = (
            system.query()
            .where("monitor above desk", fuzzy=True)
            .limit(None)
            .execute()
        )
        top = results.explain()[0]
        assert top.degree == 1.0
        assert dict(top.leaf_degrees)["monitor above desk [fuzzy]"] == 1.0
        assert "degree=" in top.describe() and "degrees=[" in top.describe()
        payload = results.to_dicts()[0]
        assert payload["degree"] == 1.0
        assert payload["leaf_degrees"] == {"monitor above desk [fuzzy]": 1.0}

    def test_graded_trace_counts_stages(self, system):
        results = (
            system.query()
            .where("monitor above desk", fuzzy=True)
            .limit(None)
            .execute()
        )
        trace = results.trace
        assert trace.predicate_evaluated + trace.predicate_pruned == len(system)
        assert "predicate-evaluated" in results.explain_report()

    def test_predicate_statistics_accumulate(self, system):
        before = system.predicate_statistics()
        system.query().where("monitor above desk").limit(None).execute()
        system.query().where("monitor above desk", fuzzy=True).limit(None).execute()
        after = system.predicate_statistics()
        assert after.queries == before.queries + 2
        assert after.graded_queries == before.graded_queries + 1
        assert after.evaluated > before.evaluated

    def test_query_batch_rejects_graded_specs(self, system):
        with pytest.raises(QuerySpecError):
            system.query_batch(
                [system.query().where("monitor above desk", fuzzy=True)]
            )


class TestResultSet:
    def test_sequence_protocol(self, system, office):
        results = system.query(office).limit(None).execute()
        assert len(results) > 0
        assert results[0].rank == 1
        assert list(results) == list(iter(results))
        assert bool(results)

    def test_pagination(self, system, office):
        results = system.query(office).limit(None).execute()
        size = 2
        pages = [
            results.page(number, size)
            for number in range(1, results.page_count(size) + 1)
        ]
        flattened = [entry for page in pages for entry in page]
        assert flattened == list(results)
        assert all(len(page) <= size for page in pages)
        assert len(results.page(results.page_count(size) + 1, size)) == 0

    def test_pagination_validation(self, system, office):
        results = system.query(office).execute()
        with pytest.raises(ValueError):
            results.page(0, 5)
        with pytest.raises(ValueError):
            results.page(1, 0)
        with pytest.raises(ValueError):
            results.page_count(0)

    def test_explain_reports_stages_and_cache(self, system, office):
        first = system.query(office).limit(3).execute()
        explanations = first.explain()
        assert all(e.stage == "inverted-index+signature" for e in explanations)
        assert all(e.cache_hit is False for e in explanations)
        assert all(e.transformation == "identity" for e in explanations)
        assert all(e.lcs_x > 0 and e.lcs_y > 0 for e in explanations)
        second = system.query(office).limit(3).execute()
        assert all(e.cache_hit is True for e in second.explain())

    def test_explain_full_scan_stage(self, system, office):
        results = system.query(office).execution(shortlist=False).limit(3).execute()
        assert all(e.stage == "full-scan" for e in results.explain())

    def test_explain_reports_winning_transformation(self, system, office):
        rotated = office.rotate90().renamed("office-rotated")
        system.add_picture(rotated)
        results = system.query(office).invariant().limit(None).execution(shortlist=False).execute()
        by_id = {e.image_id: e for e in results.explain()}
        assert by_id["office-rotated"].transformation == "rotate90"

    def test_explain_predicate_results(self, system):
        results = system.query().where("monitor above desk").limit(None).execute()
        explanations = results.explain()
        top = explanations[0]
        assert top.satisfied == ["monitor above desk"]
        tail = explanations[-1]
        assert tail.unsatisfied == ["monitor above desk"]
        report = results.explain_report()
        assert "plan:" in report and "label-pruned" in report

    def test_to_dicts_and_jsonl(self, system, office):
        results = system.query(office).limit(2).execute()
        dicts = results.to_dicts()
        assert [d["image_id"] for d in dicts] == [r.image_id for r in results]
        assert all({"rank", "score", "transformation"} <= set(d) for d in dicts)
        lines = results.to_jsonl().splitlines()
        assert [json.loads(line)["rank"] for line in lines] == [1, 2]

    def test_predicate_jsonl(self, system):
        results = system.query().where("monitor above desk").limit(2).execute()
        payloads = [json.loads(line) for line in results.to_jsonl().splitlines()]
        assert all("satisfied" in payload for payload in payloads)

    def test_predicate_ranks_are_global_across_pages(self, system):
        results = system.query().where("monitor above desk").limit(None).execute()
        assert len(results) == len(system)
        page = results.page(2, 2)
        assert [d["rank"] for d in page.to_dicts()] == [3, 4]
        assert [e.rank for e in page.explain()] == [3, 4]


class TestQueryBatchSurface:
    def test_accepts_builders_and_specs(self, system, office, traffic):
        batch = system.query_batch(
            [system.query(office).limit(3), system.query(traffic).limit(3).spec()]
        )
        assert all(isinstance(results, ResultSet) for results in batch)
        assert batch[0][0].image_id == office.name
        assert batch[1][0].image_id == traffic.name
        assert batch[0].spec is not None

    def test_rejects_predicate_specs(self, system, office):
        with pytest.raises(QuerySpecError):
            system.query_batch([system.query().where("monitor above desk")])

    def test_rejects_foreign_items(self, system, office):
        with pytest.raises(TypeError):
            system.query_batch([office])

    def test_bare_spec_inherits_system_policy(self, scene_collection, office):
        policy = SimilarityPolicy(normalization=Normalization.NONE)
        system = RetrievalSystem.from_pictures(scene_collection, policy=policy)
        serial = system.query(office).limit(None).execute()
        batch = system.query_batch([QuerySpec(picture=office, limit=None)])[0]
        assert serial[0].score > 1.0  # the custom raw-count policy applied
        assert [r.describe() for r in batch] == [r.describe() for r in serial]

    def test_batch_honours_per_query_cache_toggle(self, system, office):
        system.query(office).limit(None).execute()  # warm the cache
        before = len(system._engine.score_cache)
        system.query_batch([system.query(office).limit(None).execution(cache=False)])
        report = system.last_batch_report
        # The bypassing query neither read nor wrote the warm cache.
        assert report.cache_hits == 0
        assert report.scored == report.candidates_considered > 0
        assert len(system._engine.score_cache) == before

    def test_batch_matches_serial_builder(self, system, scene_collection):
        pictures = [scene_collection[0], scene_collection[3], scene_collection[0]]
        serial = [
            [r.describe() for r in system.query(p).limit(4).execution(cache=False).execute()]
            for p in pictures
        ]
        system._engine.score_cache.clear()
        batch = system.query_batch(
            [system.query(p).limit(4) for p in pictures], workers=2
        )
        assert [[r.describe() for r in results] for results in batch] == serial
        assert system.last_batch_report.total_queries == 3
        assert system.last_batch_report.unique_evaluations == 2
