"""Smoke tests: every example script runs to completion.

The examples double as executable documentation, so the suite runs each one in
a subprocess and checks both the exit status and a key phrase of its output.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

#: (script name, phrase its stdout must contain).
EXPECTED = [
    ("quickstart.py", "Ranked retrieval over a small database"),
    ("office_scene_retrieval.py", "Partial query"),
    ("rotation_invariant_search.py", "Transformation-invariant query"),
    ("partial_query_search.py", "average precision"),
    ("baseline_comparison.py", "modified LCS vs type-1 clique"),
    ("pixels_to_strings.py", "segmentation recovered"),
]


@pytest.mark.parametrize("script, phrase", EXPECTED)
def test_example_runs_and_prints_expected_output(script, phrase):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example {script} is missing"
    completed = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr
    assert phrase in completed.stdout


def test_all_examples_are_covered_by_this_suite():
    on_disk = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    covered = {script for script, _ in EXPECTED}
    assert covered == on_disk
