"""Integration tests: the full pipeline from pixels to ranked retrieval."""

import pytest

from repro.datasets.corpus import planted_retrieval_corpus, transformation_corpus
from repro.geometry.rectangle import Rectangle
from repro.iconic.raster import LabeledRaster
from repro.index.storage import load_database, save_database
from repro.retrieval.evaluation import (
    be_string_method,
    evaluate_corpus,
    type_similarity_method,
)
from repro.retrieval.system import RetrievalSystem


class TestPixelsToRetrieval:
    """Raster -> segmentation -> BE-strings -> database -> ranked search."""

    def test_segmented_scene_retrieves_its_source(self, scene_collection, office):
        raster, value_map = LabeledRaster.render(office)
        labels = {value: identifier.split("#")[0] for value, identifier in value_map.items()}
        segmented = raster.to_picture(value_labels=labels, name="segmented-office")
        system = RetrievalSystem.from_pictures(scene_collection)
        results = system.query(segmented).limit(3).execute()
        assert results[0].image_id == office.name
        assert results[0].score > 0.9


class TestDatabaseLifecycle:
    def test_build_query_edit_persist_reload(self, scene_collection, office, tmp_path):
        system = RetrievalSystem.from_pictures(scene_collection)

        # 1. Query.
        first = system.query(office).limit(1).execute()[0]
        assert first.image_id == office.name

        # 2. Dynamic edit: add an object to a stored image, then query again.
        system.add_object(office.name, "mug", Rectangle(60, 46, 64, 50))
        edited = system.record(office.name)
        assert edited.bestring.object_identifiers == set(edited.picture.identifiers)

        # 3. Persist and reload.
        path = system.save(tmp_path / "db.json")
        reloaded = RetrievalSystem.from_file(path)
        assert reloaded.image_ids == system.image_ids
        assert reloaded.record(office.name).picture.has_icon("mug")

        # 4. The reloaded database still answers queries identically.
        original = system.query(office).limit(None).execute()
        reloaded_results = reloaded.query(office).limit(None).execute()
        original_ranks = [result.image_id for result in original]
        reloaded_ranks = [result.image_id for result in reloaded_results]
        assert original_ranks == reloaded_ranks

    def test_low_level_storage_roundtrip_matches_engine_state(self, scene_collection, tmp_path):
        system = RetrievalSystem.from_pictures(scene_collection)
        path = system.save(tmp_path / "db.json")
        database = load_database(path)
        assert database.image_ids == system.image_ids
        save_database(database, tmp_path / "copy.json")
        assert load_database(tmp_path / "copy.json").image_ids == database.image_ids


class TestRetrievalQuality:
    """Experiment E5/E6 in miniature: the paper's method finds what it should."""

    def test_partial_queries_rank_planted_copies_first(self):
        corpus = planted_retrieval_corpus(seed=5, base_scene_count=2, distractors_per_scene=4)
        report = evaluate_corpus(corpus, {"be": be_string_method()}, cutoffs=(1, 3))
        aggregated = report.methods["be"].aggregate()
        # The base scene is always the top result and the three planted
        # relevant images dominate the ranking.
        assert aggregated["precision@1"] == pytest.approx(1.0)
        assert aggregated["average_precision"] >= 0.7
        assert aggregated["recall@3"] >= 0.5

    def test_be_string_matches_clique_baseline_quality_on_partial_queries(self):
        corpus = planted_retrieval_corpus(seed=9, base_scene_count=2, distractors_per_scene=3)
        report = evaluate_corpus(
            corpus,
            {"be": be_string_method(), "clique": type_similarity_method()},
            cutoffs=(3,),
        )
        be_quality = report.methods["be"].aggregate()["average_precision"]
        clique_quality = report.methods["clique"].aggregate()["average_precision"]
        assert be_quality >= clique_quality - 0.15

    def test_only_invariant_retrieval_finds_transformed_copies(self):
        corpus = transformation_corpus(seed=3, base_scene_count=4, distractors_per_scene=2)
        report = evaluate_corpus(
            corpus,
            {
                "plain": be_string_method(invariant=False),
                "invariant": be_string_method(invariant=True),
            },
            cutoffs=(1,),
        )
        plain = report.methods["plain"].aggregate()
        invariant = report.methods["invariant"].aggregate()
        # The invariant mode retrieves every planted rotated/reflected copy at
        # rank 1 with a full-score match; the plain mode can do no better.
        assert invariant["precision@1"] == pytest.approx(1.0)
        assert invariant["average_precision"] >= plain["average_precision"]

    def test_report_table_renders(self):
        corpus = planted_retrieval_corpus(seed=1, base_scene_count=1, distractors_per_scene=2)
        report = evaluate_corpus(corpus, {"be": be_string_method()}, cutoffs=(1, 3))
        table = report.table(metrics=("precision@1", "precision@3"))
        assert "method" in table and "be" in table


class TestScaleSmoke:
    def test_hundred_image_database_is_responsive(self):
        from repro.datasets.synthetic import SceneParameters, random_pictures

        pictures = random_pictures(
            100, seed=11, parameters=SceneParameters(object_count=8, alignment_probability=0.3)
        )
        system = RetrievalSystem.from_pictures(pictures)
        query = pictures[37]
        results = system.query(query).limit(5).execute()
        assert results[0].image_id == query.name
        assert len(results) == 5
