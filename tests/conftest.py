"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.construct import encode_picture
from repro.datasets.scenes import landscape_scene, office_scene, traffic_scene
from repro.datasets.synthetic import (
    SceneParameters,
    aligned_picture,
    distinct_boundaries_picture,
    random_picture,
    staircase_picture,
)
from repro.geometry.rectangle import Rectangle
from repro.iconic.picture import SymbolicPicture, fig1_picture


@pytest.fixture
def fig1():
    """The paper's Figure 1 three-object picture."""
    return fig1_picture()


@pytest.fixture
def fig1_bestring(fig1):
    """The 2D BE-string of the Figure 1 picture."""
    return encode_picture(fig1)


@pytest.fixture
def office():
    """The canonical office scene."""
    return office_scene(0)


@pytest.fixture
def traffic():
    """The canonical traffic scene."""
    return traffic_scene(0)


@pytest.fixture
def landscape():
    """The canonical landscape scene."""
    return landscape_scene(0)


@pytest.fixture
def scene_collection():
    """A small mixed collection used by retrieval tests."""
    return [
        office_scene(0),
        office_scene(1),
        office_scene(5),
        traffic_scene(0),
        traffic_scene(4),
        landscape_scene(0),
        landscape_scene(3),
    ]


@pytest.fixture
def random_scene():
    """A deterministic random scene with some aligned boundaries."""
    return random_picture(seed=7, parameters=SceneParameters(object_count=10, alignment_probability=0.4))


@pytest.fixture
def aligned_scene():
    """Best-case scene: all boundaries coincide with neighbours or the frame."""
    return aligned_picture(6)


@pytest.fixture
def staircase_scene():
    """Worst case for C-string cutting: a chain of partial overlaps."""
    return staircase_picture(6)


@pytest.fixture
def sparse_scene():
    """Worst case for BE-string storage: all projections distinct."""
    return distinct_boundaries_picture(6)


@pytest.fixture
def two_object_picture():
    """A minimal two-object picture used by focused unit tests."""
    return SymbolicPicture.build(
        width=20.0,
        height=10.0,
        objects=[
            ("A", Rectangle(2.0, 2.0, 8.0, 6.0)),
            ("B", Rectangle(10.0, 4.0, 16.0, 9.0)),
        ],
        name="two-objects",
    )
