"""Unit tests for the signature pre-filter."""

from collections import Counter

import pytest

from repro.index.signature import (
    SignatureFilter,
    label_signature,
    multiset_overlap,
    overlap_ratio,
)


class TestSignatureMath:
    def test_label_signature_counts_instances(self, landscape):
        signature = label_signature(landscape)
        assert signature["tree"] == 2
        assert signature["sun"] == 1

    def test_multiset_overlap(self):
        assert multiset_overlap(Counter(a=2, b=1), Counter(a=1, c=4)) == 1
        assert multiset_overlap(Counter(a=2), Counter(a=5)) == 2

    def test_overlap_ratio(self):
        assert overlap_ratio(Counter(a=2, b=2), Counter(a=1)) == pytest.approx(0.25)
        assert overlap_ratio(Counter(), Counter(a=1)) == 0.0


class TestFilter:
    def test_add_remove_update(self, office, traffic):
        filters = SignatureFilter()
        filters.add_picture("office", office)
        with pytest.raises(KeyError):
            filters.add_picture("office", office)
        filters.update_picture("office", traffic)
        filters.remove_picture("office")
        with pytest.raises(KeyError):
            filters.remove_picture("office")
        assert len(filters) == 0

    def test_zero_threshold_admits_everything(self, office, landscape):
        filters = SignatureFilter(minimum_overlap_ratio=0.0)
        filters.add_picture("office", office)
        filters.add_picture("landscape", landscape)
        kept = filters.filter(office, ["office", "landscape", "unknown"])
        assert kept == ["office", "landscape", "unknown"]

    def test_unregistered_id_fails_open(self, office, landscape):
        # Regression: an image id with no registered signature used to be
        # rejected outright, silently dropping the image from every result.
        # The filter is an optimisation, so unknown ids must be admitted
        # (scored) even under an aggressive threshold.
        filters = SignatureFilter(minimum_overlap_ratio=0.9)
        filters.add_picture("landscape", landscape)
        signature = label_signature(office)
        assert filters.admits(signature, "never-registered") is True
        assert filters.filter(office, ["landscape", "never-registered"]) == [
            "never-registered"
        ]

    def test_positive_threshold_prunes_unrelated(self, office, landscape):
        filters = SignatureFilter(minimum_overlap_ratio=0.5)
        filters.add_picture("office", office)
        filters.add_picture("landscape", landscape)
        kept = filters.filter(office, ["office", "landscape"])
        assert kept == ["office"]

    def test_scored_orders_by_overlap(self, office, traffic, landscape):
        filters = SignatureFilter()
        for picture in (office, traffic, landscape):
            filters.add_picture(picture.name, picture)
        scored = filters.scored(office, [office.name, traffic.name, landscape.name])
        assert scored[0][0] == office.name
        assert scored[0][1] == pytest.approx(1.0)
        assert scored[-1][1] <= scored[0][1]
