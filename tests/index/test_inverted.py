"""Unit tests for the inverted label index."""

import pytest

from repro.index.inverted import InvertedSymbolIndex


class TestMaintenance:
    def test_add_and_lookup(self, office, traffic):
        index = InvertedSymbolIndex()
        index.add_picture("office", office)
        index.add_picture("traffic", traffic)
        assert index.images_with_label("desk") == {"office"}
        assert index.images_with_label("car") == {"traffic"}
        assert index.images_with_label("unknown") == set()
        assert len(index) == 2

    def test_duplicate_id_rejected(self, office):
        index = InvertedSymbolIndex()
        index.add_picture("office", office)
        with pytest.raises(KeyError):
            index.add_picture("office", office)

    def test_remove_picture_clears_postings(self, office):
        index = InvertedSymbolIndex()
        index.add_picture("office", office)
        index.remove_picture("office")
        assert index.images_with_label("desk") == set()
        assert len(index) == 0
        with pytest.raises(KeyError):
            index.remove_picture("office")

    def test_update_picture(self, office):
        index = InvertedSymbolIndex()
        index.add_picture("scene", office)
        index.update_picture("scene", office.remove_icon("phone"))
        assert index.images_with_label("phone") == set()
        assert index.images_with_label("desk") == {"scene"}

    def test_remove_picture_drops_empty_postings_sets(self, office, traffic):
        # Regression: a label whose last image is removed must disappear from
        # the index entirely -- stale labels would keep matching and inflate
        # candidate shortlists.
        index = InvertedSymbolIndex()
        index.add_picture("office", office)
        index.add_picture("traffic", traffic)
        index.remove_picture("office")
        office_only = set(office.labels) - set(traffic.labels)
        assert office_only  # the fixture scenes differ
        for label in office_only:
            assert label not in index.vocabulary
            assert index.candidates([label]) == set()
        assert not any(not postings for postings in index._postings.values())

    def test_update_picture_drops_postings_of_removed_labels(self, office):
        index = InvertedSymbolIndex()
        index.add_picture("scene", office)
        index.update_picture("scene", office.remove_icon("phone"))
        assert "phone" not in index.vocabulary
        assert index.candidates(["phone"]) == set()
        assert not any(not postings for postings in index._postings.values())

    def test_vocabulary_shrinks_back_to_empty(self, office, traffic):
        index = InvertedSymbolIndex()
        index.add_picture("office", office)
        index.add_picture("traffic", traffic)
        index.remove_picture("office")
        index.remove_picture("traffic")
        assert index.vocabulary == []
        assert index._postings == {}

    def test_labels_of(self, landscape):
        index = InvertedSymbolIndex()
        index.add_picture("landscape", landscape)
        labels = index.labels_of("landscape")
        assert labels["tree"] == 2
        with pytest.raises(KeyError):
            index.labels_of("missing")


class TestCandidates:
    def test_candidates_require_shared_labels(self, office, traffic, landscape):
        index = InvertedSymbolIndex()
        index.add_picture("office", office)
        index.add_picture("traffic", traffic)
        index.add_picture("landscape", landscape)
        assert index.candidates(["desk", "monitor"]) == {"office"}
        assert index.candidates(["tree"]) == {"landscape"}
        assert index.candidates(["nonexistent"]) == set()

    def test_minimum_shared_threshold(self, office, traffic):
        index = InvertedSymbolIndex()
        index.add_picture("office", office)
        index.add_picture("traffic", traffic)
        labels = ["desk", "monitor", "car"]
        assert index.candidates(labels, minimum_shared=1) == {"office", "traffic"}
        assert index.candidates(labels, minimum_shared=2) == {"office"}
        with pytest.raises(ValueError):
            index.candidates(labels, minimum_shared=0)

    def test_vocabulary_and_indexed_images(self, office):
        index = InvertedSymbolIndex()
        index.add_picture("office", office)
        assert "desk" in index.vocabulary
        assert index.indexed_images == ["office"]
