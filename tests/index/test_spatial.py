"""Unit tests for the region (location) index."""

import pytest

from repro.geometry.rectangle import Rectangle
from repro.iconic.picture import SymbolicPicture
from repro.index.spatial import QUADRANTS, RegionIndex


@pytest.fixture
def index(office, traffic, landscape):
    region_index = RegionIndex(resolution=8)
    for picture in (office, traffic, landscape):
        region_index.add_picture(picture.name, picture)
    return region_index


class TestMaintenance:
    def test_counts(self, index, office, traffic, landscape):
        assert len(index) == 3
        assert index.icon_count == len(office) + len(traffic) + len(landscape)

    def test_duplicate_image_rejected(self, index, office):
        with pytest.raises(KeyError):
            index.add_picture(office.name, office)

    def test_remove_picture(self, index, office):
        index.remove_picture(office.name)
        assert len(index) == 2
        assert index.images_with_icon_in_region(QUADRANTS["everywhere"], label="desk") == []
        with pytest.raises(KeyError):
            index.remove_picture(office.name)

    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            RegionIndex(resolution=0)

    def test_bucket_statistics(self, index):
        stats = index.bucket_statistics()
        assert stats["cells"] > 0
        assert stats["max"] >= stats["mean"] > 0

    def test_empty_statistics(self):
        assert RegionIndex().bucket_statistics() == {"cells": 0.0, "mean": 0.0, "max": 0.0}


class TestQueries:
    def test_label_filtered_region_query(self, index, office):
        # The office desk occupies the lower half of its frame.
        images = index.images_with_icon_in_region(QUADRANTS["lower-left"], label="desk")
        assert images == [office.name]

    def test_region_query_without_label(self, index):
        everywhere = index.icons_in_region(QUADRANTS["everywhere"])
        assert len(everywhere) == index.icon_count

    def test_region_outside_unit_square_rejected(self, index):
        with pytest.raises(ValueError):
            index.icons_in_region(Rectangle(0.0, 0.0, 2.0, 1.0))

    def test_quadrant_queries_are_consistent_with_geometry(self, landscape):
        region_index = RegionIndex(resolution=16)
        region_index.add_picture(landscape.name, landscape)
        # The sun sits in the upper-left of the canonical landscape scene.
        upper_left = region_index.icons_in_region(QUADRANTS["upper-left"], label="sun")
        lower_right = region_index.icons_in_region(QUADRANTS["lower-right"], label="sun")
        assert [entry.identifier for entry in upper_left] == ["sun"]
        assert lower_right == []

    def test_icons_do_not_duplicate_across_buckets(self):
        picture = SymbolicPicture.build(
            width=10,
            height=10,
            objects=[("big", Rectangle(0, 0, 10, 10))],
            name="one-big-icon",
        )
        region_index = RegionIndex(resolution=4)
        region_index.add_picture(picture.name, picture)
        found = region_index.icons_in_region(QUADRANTS["everywhere"])
        assert len(found) == 1
        assert found[0].normalized_mbr == Rectangle(0.0, 0.0, 1.0, 1.0)

    def test_multiple_instances_are_distinct_entries(self, landscape):
        region_index = RegionIndex()
        region_index.add_picture(landscape.name, landscape)
        trees = region_index.icons_in_region(QUADRANTS["everywhere"], label="tree")
        assert {entry.identifier for entry in trees} == {"tree", "tree#1"}
