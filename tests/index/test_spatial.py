"""Unit tests for the region (location) index."""

import pytest

from repro.geometry.rectangle import Rectangle
from repro.iconic.picture import SymbolicPicture
from repro.index.spatial import QUADRANTS, RegionIndex


@pytest.fixture
def index(office, traffic, landscape):
    region_index = RegionIndex(resolution=8)
    for picture in (office, traffic, landscape):
        region_index.add_picture(picture.name, picture)
    return region_index


class TestMaintenance:
    def test_counts(self, index, office, traffic, landscape):
        assert len(index) == 3
        assert index.icon_count == len(office) + len(traffic) + len(landscape)

    def test_duplicate_image_rejected(self, index, office):
        with pytest.raises(KeyError):
            index.add_picture(office.name, office)

    def test_remove_picture(self, index, office):
        index.remove_picture(office.name)
        assert len(index) == 2
        assert index.images_with_icon_in_region(QUADRANTS["everywhere"], label="desk") == []
        with pytest.raises(KeyError):
            index.remove_picture(office.name)

    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            RegionIndex(resolution=0)

    def test_bucket_statistics(self, index):
        stats = index.bucket_statistics()
        assert stats["cells"] > 0
        assert stats["max"] >= stats["mean"] > 0

    def test_empty_statistics(self):
        assert RegionIndex().bucket_statistics() == {"cells": 0.0, "mean": 0.0, "max": 0.0}


class TestQueries:
    def test_label_filtered_region_query(self, index, office):
        # The office desk occupies the lower half of its frame.
        images = index.images_with_icon_in_region(QUADRANTS["lower-left"], label="desk")
        assert images == [office.name]

    def test_region_query_without_label(self, index):
        everywhere = index.icons_in_region(QUADRANTS["everywhere"])
        assert len(everywhere) == index.icon_count

    def test_region_outside_unit_square_rejected(self, index):
        with pytest.raises(ValueError):
            index.icons_in_region(Rectangle(0.0, 0.0, 2.0, 1.0))

    def test_quadrant_queries_are_consistent_with_geometry(self, landscape):
        region_index = RegionIndex(resolution=16)
        region_index.add_picture(landscape.name, landscape)
        # The sun sits in the upper-left of the canonical landscape scene.
        upper_left = region_index.icons_in_region(QUADRANTS["upper-left"], label="sun")
        lower_right = region_index.icons_in_region(QUADRANTS["lower-right"], label="sun")
        assert [entry.identifier for entry in upper_left] == ["sun"]
        assert lower_right == []

    def test_icons_do_not_duplicate_across_buckets(self):
        picture = SymbolicPicture.build(
            width=10,
            height=10,
            objects=[("big", Rectangle(0, 0, 10, 10))],
            name="one-big-icon",
        )
        region_index = RegionIndex(resolution=4)
        region_index.add_picture(picture.name, picture)
        found = region_index.icons_in_region(QUADRANTS["everywhere"])
        assert len(found) == 1
        assert found[0].normalized_mbr == Rectangle(0.0, 0.0, 1.0, 1.0)

    def test_multiple_instances_are_distinct_entries(self, landscape):
        region_index = RegionIndex()
        region_index.add_picture(landscape.name, landscape)
        trees = region_index.icons_in_region(QUADRANTS["everywhere"], label="tree")
        assert {entry.identifier for entry in trees} == {"tree", "tree#1"}


class TestBoundaryClamping:
    """Normalised MBRs touching 1.0 and degenerate MBRs must land in valid
    cells — never be silently lost from the grid."""

    def _index_single(self, mbr, resolution=8):
        picture = SymbolicPicture.build(
            width=10, height=10, objects=[("probe", mbr)], name="probe-scene"
        )
        region_index = RegionIndex(resolution=resolution)
        region_index.add_picture(picture.name, picture)
        return region_index

    def test_cells_for_clamps_at_exactly_one(self):
        region_index = RegionIndex(resolution=8)
        cells = list(region_index._cells_for(Rectangle(0.9, 0.9, 1.0, 1.0)))
        assert cells == [(7, 7)]

    def test_icon_touching_the_far_corner_is_found(self):
        region_index = self._index_single(Rectangle(9.0, 9.0, 10.0, 10.0))
        found = region_index.icons_in_region(Rectangle(0.75, 0.75, 1.0, 1.0))
        assert [entry.identifier for entry in found] == ["probe"]

    @pytest.mark.parametrize("coordinate", [0.0, 0.5, 0.625, 1.0])
    def test_degenerate_point_mbr_lands_in_a_valid_cell(self, coordinate):
        # Regression: a zero-area MBR sitting exactly on a grid line produced
        # an empty cell range (end cell before begin cell) and vanished from
        # the index.
        region_index = RegionIndex(resolution=8)
        point = Rectangle(coordinate, coordinate, coordinate, coordinate)
        cells = list(region_index._cells_for(point))
        assert len(cells) == 1
        column, row = cells[0]
        assert 0 <= column < 8 and 0 <= row < 8

    def test_degenerate_zero_area_icon_is_queryable(self):
        # A zero-width, zero-height icon at the centre (a grid-line point).
        region_index = self._index_single(Rectangle(5.0, 5.0, 5.0, 5.0))
        assert region_index.icon_count == 1
        found = region_index.icons_in_region(Rectangle(0.0, 0.0, 1.0, 1.0))
        assert [entry.identifier for entry in found] == ["probe"]

    def test_degenerate_vertical_line_icon_is_queryable(self):
        # Zero width, full height: every row of one column.
        region_index = self._index_single(Rectangle(5.0, 0.0, 5.0, 10.0))
        found = region_index.icons_in_region(Rectangle(0.25, 0.0, 0.75, 1.0))
        assert [entry.identifier for entry in found] == ["probe"]
