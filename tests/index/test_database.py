"""Unit tests for the image database."""

import pytest

from repro.core.construct import encode_picture
from repro.geometry.rectangle import Rectangle
from repro.index.database import DatabaseError, ImageDatabase


class TestWholeImageOperations:
    def test_add_and_get(self, office):
        database = ImageDatabase()
        record = database.add_picture(office)
        assert record.image_id == office.name
        assert database.get(office.name).picture == office
        assert office.name in database
        assert len(database) == 1

    def test_add_requires_an_id(self, office):
        database = ImageDatabase()
        anonymous = office.renamed("")
        with pytest.raises(DatabaseError):
            database.add_picture(anonymous)
        record = database.add_picture(anonymous, image_id="named")
        assert record.image_id == "named"
        assert record.picture.name == "named"

    def test_duplicate_id_rejected(self, office):
        database = ImageDatabase()
        database.add_picture(office)
        with pytest.raises(DatabaseError):
            database.add_picture(office)

    def test_add_pictures_bulk(self, scene_collection):
        database = ImageDatabase()
        records = database.add_pictures(scene_collection)
        assert len(records) == len(scene_collection)
        assert database.image_ids == sorted(p.name for p in scene_collection)

    def test_remove_picture(self, office):
        database = ImageDatabase()
        database.add_picture(office)
        removed = database.remove_picture(office.name)
        assert removed.picture == office
        assert len(database) == 0
        with pytest.raises(DatabaseError):
            database.remove_picture(office.name)

    def test_get_unknown_raises(self):
        with pytest.raises(DatabaseError):
            ImageDatabase().get("nope")

    def test_stored_bestring_matches_picture(self, office):
        database = ImageDatabase()
        record = database.add_picture(office)
        assert record.bestring.x.symbols == encode_picture(office).x.symbols
        assert record.storage_symbols == record.bestring.total_symbols
        assert record.object_count == len(office)


class TestObjectLevelOperations:
    def test_add_object_updates_everything(self, office):
        database = ImageDatabase()
        database.add_picture(office)
        record = database.add_object(office.name, "mug", Rectangle(60, 46, 64, 50))
        assert record.picture.has_icon("mug")
        expected = encode_picture(record.picture)
        assert record.bestring.x.symbols == expected.x.symbols
        assert record.indexed.to_bestring().y.symbols == expected.y.symbols

    def test_add_object_existing_label_gets_new_instance(self, landscape):
        database = ImageDatabase()
        database.add_picture(landscape)
        record = database.add_object(landscape.name, "tree", Rectangle(100, 30, 110, 50))
        assert record.picture.has_icon("tree#2")

    def test_remove_object_updates_everything(self, office):
        database = ImageDatabase()
        database.add_picture(office)
        record = database.remove_object(office.name, "phone")
        assert not record.picture.has_icon("phone")
        expected = encode_picture(record.picture)
        assert record.bestring.x.symbols == expected.x.symbols

    def test_add_then_remove_restores_bestring(self, office):
        database = ImageDatabase()
        original = database.add_picture(office).bestring
        database.add_object(office.name, "mug", Rectangle(60, 46, 64, 50))
        record = database.remove_object(office.name, "mug")
        assert record.bestring.x.symbols == original.x.symbols
        assert record.bestring.y.symbols == original.y.symbols


class TestStatistics:
    def test_statistics(self, scene_collection):
        database = ImageDatabase()
        database.add_pictures(scene_collection)
        stats = database.statistics()
        assert stats["images"] == len(scene_collection)
        assert stats["objects"] == sum(len(p) for p in scene_collection)
        assert stats["objects_per_image"] == pytest.approx(
            stats["objects"] / stats["images"]
        )
        assert stats["symbols"] > stats["objects"] * 2

    def test_empty_statistics(self):
        stats = ImageDatabase().statistics()
        assert stats["images"] == 0
        assert stats["objects_per_image"] == 0.0
