"""Unit tests for result ranking."""


from repro.core.construct import encode_picture
from repro.core.similarity import similarity
from repro.index.ranking import rank_results


def scored_results(query_picture, database_pictures):
    query = encode_picture(query_picture)
    return [
        (picture.name, similarity(query, encode_picture(picture)))
        for picture in database_pictures
    ]


class TestRankResults:
    def test_orders_by_descending_score(self, office, scene_collection):
        ranked = rank_results(scored_results(office, scene_collection))
        scores = [entry.score for entry in ranked]
        assert scores == sorted(scores, reverse=True)
        assert ranked[0].image_id == office.name
        assert [entry.rank for entry in ranked] == list(range(1, len(ranked) + 1))

    def test_limit(self, office, scene_collection):
        ranked = rank_results(scored_results(office, scene_collection), limit=3)
        assert len(ranked) == 3

    def test_minimum_score_filters(self, office, scene_collection):
        ranked = rank_results(scored_results(office, scene_collection), minimum_score=0.9)
        assert all(entry.score >= 0.9 for entry in ranked)
        assert len(ranked) >= 1

    def test_ties_broken_by_image_id(self, office):
        results = scored_results(office, [office.renamed("zzz"), office.renamed("aaa")])
        ranked = rank_results(results)
        assert [entry.image_id for entry in ranked] == ["aaa", "zzz"]

    def test_describe_contains_id_and_score(self, office):
        ranked = rank_results(scored_results(office, [office]))
        text = ranked[0].describe()
        assert office.name in text
        assert "score=" in text

    def test_empty_input(self):
        assert rank_results([]) == []
