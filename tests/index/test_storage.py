"""Unit tests for JSON persistence."""

import json

import pytest

from repro.index.database import ImageDatabase
from repro.index.storage import (
    StorageError,
    bestring_for_file,
    database_from_json,
    database_to_json,
    load_database,
    picture_from_json_text,
    picture_to_json_text,
    save_database,
)


@pytest.fixture
def populated_database(scene_collection):
    database = ImageDatabase(name="test-db")
    database.add_pictures(scene_collection)
    return database


class TestRoundTrip:
    def test_in_memory_roundtrip(self, populated_database):
        payload = database_to_json(populated_database)
        restored = database_from_json(payload)
        assert restored.image_ids == populated_database.image_ids
        assert restored.name == "test-db"
        for image_id in populated_database.image_ids:
            assert restored.get(image_id).picture == populated_database.get(image_id).picture
            assert restored.get(image_id).bestring == populated_database.get(image_id).bestring

    def test_file_roundtrip(self, populated_database, tmp_path):
        path = save_database(populated_database, tmp_path / "db" / "images.json")
        assert path.exists()
        restored = load_database(path)
        assert restored.image_ids == populated_database.image_ids

    def test_picture_text_roundtrip(self, office):
        assert picture_from_json_text(picture_to_json_text(office)) == office

    def test_bestring_for_file_matches_encoding(self, office):
        from repro.core.construct import encode_picture

        assert bestring_for_file(office) == encode_picture(office).to_dict()


class TestErrorHandling:
    def test_unsupported_schema_version(self, populated_database):
        payload = database_to_json(populated_database)
        payload["schema_version"] = 999
        with pytest.raises(StorageError):
            database_from_json(payload)

    def test_malformed_entry(self, populated_database):
        payload = database_to_json(populated_database)
        del payload["images"][0]["picture"]
        with pytest.raises(StorageError):
            database_from_json(payload)

    def test_corrupted_bestring_detected(self, populated_database):
        payload = database_to_json(populated_database)
        payload["images"][0]["bestring"]["x"] = "Z.b Z.e"
        with pytest.raises(StorageError):
            database_from_json(payload)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(StorageError):
            load_database(path)

    def test_invalid_picture_text(self):
        with pytest.raises(StorageError):
            picture_from_json_text("][")

    def test_saved_file_is_stable_json(self, populated_database, tmp_path):
        path = save_database(populated_database, tmp_path / "images.json")
        parsed = json.loads(path.read_text())
        assert parsed["schema_version"] == 1
        assert len(parsed["images"]) == len(populated_database)
