"""Tests for the process-parallel shard workers (scatter-gather execution).

The headline property is byte-identical equivalence: for every query shape
and every worker count, ``executor="shard_process"`` must reproduce the
serial engine's rankings exactly — scores, ranks, winning transformations,
and tie-break order included.  The CI ``shard-workers`` matrix leg re-runs
this module with ``REPRO_SHARD_WORKERS`` pinned to 2 and 4.
"""

import os

import pytest

from repro.core.transforms import Transformation
from repro.datasets.scenes import office_scene, traffic_scene
from repro.datasets.synthetic import random_picture
from repro.index.backends import ShardedBackend, shard_index_for
from repro.index.database import ImageDatabase
from repro.index.execution import ExecutionOptions
from repro.index.query import Query, QueryEngine
from repro.index.spec import QuerySpec
from repro.index.workers import (
    ShardWorkerError,
    ShardWorkerPool,
    sanitized_execution,
    spec_for_worker,
)
from repro.retrieval.predicates import parse_predicate, parse_tree

_FORCED = os.environ.get("REPRO_SHARD_WORKERS")
#: The CI matrix leg pins one count; the default run sweeps the matrix.
WORKER_COUNTS = [int(_FORCED)] if _FORCED else [1, 2, 4]

DATABASE_SIZE = 36


def result_key(results):
    """Everything a ranked result list is judged on, including tie-breaks."""
    return [
        (r.rank, r.image_id, r.score, r.similarity.transformation, r.similarity.common_objects)
        for r in results
    ]


def predicate_key(results):
    """Identity of a predicate-only ranking (matches carry no rank)."""
    return [(match.image_id, match.score, match.satisfied) for match in results]


def graded_key(results):
    """Identity of a graded predicate ranking, per-leaf degrees included."""
    return [
        (match.image_id, match.score, tuple(sorted(match.leaf_degrees)))
        for match in results
    ]


@pytest.fixture(scope="module")
def pictures():
    """A mixed collection: random scenes plus near-duplicates that force ties."""
    collection = [random_picture(seed=index) for index in range(DATABASE_SIZE - 4)]
    collection += [office_scene(0), office_scene(0), traffic_scene(1), traffic_scene(1)]
    return collection


@pytest.fixture
def engine(pictures):
    database = ImageDatabase()
    for index, picture in enumerate(pictures):
        database.add_picture(picture, f"img-{index:03d}")
    built = QueryEngine.build(database)
    yield built
    built.close_shard_pool()


def sharded(workers):
    return ExecutionOptions(executor="shard_process", workers=workers)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
class TestEquivalenceMatrix:
    """Serial vs scatter-gather, byte for byte, across the query shapes."""

    def test_exact(self, engine, pictures, workers):
        spec = QuerySpec(picture=pictures[3], limit=8)
        serial = engine.execute_spec(spec)
        gathered = engine.execute_spec(spec.with_overrides(execution=sharded(workers)))
        assert result_key(serial.results) == result_key(gathered.results)

    def test_tie_break_order(self, engine, pictures, workers):
        # The duplicated scenes tie exactly; order must match the serial
        # (-score, image_id) sort, not arrival order from the workers.
        spec = QuerySpec(picture=office_scene(0), limit=None)
        serial = engine.execute_spec(spec)
        gathered = engine.execute_spec(spec.with_overrides(execution=sharded(workers)))
        assert result_key(serial.results) == result_key(gathered.results)

    def test_invariant(self, engine, pictures, workers):
        spec = QuerySpec(
            picture=pictures[7], transformations=tuple(Transformation), limit=6
        )
        serial = engine.execute_spec(spec)
        gathered = engine.execute_spec(spec.with_overrides(execution=sharded(workers)))
        assert result_key(serial.results) == result_key(gathered.results)

    def test_partial(self, engine, pictures, workers):
        picture = office_scene(0)
        identifiers = tuple(picture.identifiers[:2])
        spec = QuerySpec(picture=picture, identifiers=identifiers, limit=6)
        serial = engine.execute_spec(spec)
        gathered = engine.execute_spec(spec.with_overrides(execution=sharded(workers)))
        assert result_key(serial.results) == result_key(gathered.results)

    def test_predicate_only(self, engine, pictures, workers):
        labels = sorted(set(pictures[0].labels))
        predicate = parse_predicate(f"{labels[0]} left_of {labels[1]}")
        spec = QuerySpec(predicates=(predicate,), limit=None)
        serial = engine.execute_spec(spec)
        gathered = engine.execute_spec(spec.with_overrides(execution=sharded(workers)))
        assert predicate_key(serial.results) == predicate_key(gathered.results)
        assert serial.predicate_matches.keys() == gathered.predicate_matches.keys()

    def test_combined(self, engine, pictures, workers):
        labels = sorted(set(pictures[0].labels))
        predicate = parse_predicate(f"{labels[0]} left_of {labels[1]}")
        spec = QuerySpec(picture=pictures[2], predicates=(predicate,), limit=8)
        serial = engine.execute_spec(spec)
        gathered = engine.execute_spec(spec.with_overrides(execution=sharded(workers)))
        assert result_key(serial.results) == result_key(gathered.results)

    def test_anytime_bitparallel(self, engine, pictures, workers):
        options = ExecutionOptions(kernel="bitparallel", strategy="anytime")
        spec = QuerySpec(picture=pictures[5], limit=5, execution=options)
        serial = engine.execute_spec(spec)
        gathered = engine.execute_spec(
            spec.with_overrides(
                execution=ExecutionOptions(
                    kernel="bitparallel",
                    strategy="anytime",
                    executor="shard_process",
                    workers=workers,
                )
            )
        )
        assert result_key(serial.results) == result_key(gathered.results)

    def test_graded_predicate_only(self, engine, pictures, workers):
        labels = sorted(set(pictures[0].labels))
        tree = parse_tree(
            f"{labels[0]} left_of {labels[1]} [fuzzy] and "
            f"{labels[0]} above {labels[1]} [fuzzy w=2]"
        )
        spec = QuerySpec(predicate_tree=tree, limit=None)
        serial = engine.execute_spec(spec)
        gathered = engine.execute_spec(spec.with_overrides(execution=sharded(workers)))
        assert graded_key(serial.results) == graded_key(gathered.results)
        assert serial.predicate_matches.keys() == gathered.predicate_matches.keys()

    def test_not_or_tree(self, engine, pictures, workers):
        labels = sorted(set(pictures[0].labels))
        tree = parse_tree(
            f"not ({labels[0]} left_of {labels[1]}) or "
            f"{labels[1]} above {labels[0]} [fuzzy]"
        )
        spec = QuerySpec(predicate_tree=tree, limit=None)
        serial = engine.execute_spec(spec)
        gathered = engine.execute_spec(spec.with_overrides(execution=sharded(workers)))
        assert graded_key(serial.results) == graded_key(gathered.results)

    def test_graded_combined_product(self, engine, pictures, workers):
        labels = sorted(set(pictures[2].labels))
        tree = parse_tree(f"{labels[0]} left_of {labels[1]} [fuzzy]")
        spec = QuerySpec(picture=pictures[2], predicate_tree=tree, limit=8)
        serial = engine.execute_spec(spec)
        gathered = engine.execute_spec(spec.with_overrides(execution=sharded(workers)))
        assert result_key(serial.results) == result_key(gathered.results)

    def test_graded_combined_sum(self, engine, pictures, workers):
        labels = sorted(set(pictures[2].labels))
        tree = parse_tree(
            f"not {labels[0]} left_of {labels[1]} or "
            f"{labels[0]} same-row {labels[1]} [fuzzy w=3]"
        )
        spec = QuerySpec(
            picture=pictures[2],
            predicate_tree=tree,
            predicate_composition="sum",
            predicate_blend=0.3,
            limit=8,
        )
        serial = engine.execute_spec(spec)
        gathered = engine.execute_spec(spec.with_overrides(execution=sharded(workers)))
        assert result_key(serial.results) == result_key(gathered.results)

    def test_graded_anytime_bitparallel(self, engine, pictures, workers):
        labels = sorted(set(pictures[5].labels))
        tree = parse_tree(f"{labels[0]} same-column {labels[1]} [fuzzy]")
        spec = QuerySpec(
            picture=pictures[5],
            predicate_tree=tree,
            limit=5,
            execution=ExecutionOptions(kernel="bitparallel", strategy="anytime"),
        )
        serial = engine.execute_spec(spec)
        gathered = engine.execute_spec(
            spec.with_overrides(
                execution=ExecutionOptions(
                    kernel="bitparallel",
                    strategy="anytime",
                    executor="shard_process",
                    workers=workers,
                )
            )
        )
        assert result_key(serial.results) == result_key(gathered.results)

    def test_batch(self, engine, pictures, workers):
        queries = [
            Query(picture=pictures[1], limit=5),
            Query(picture=pictures[4], limit=5),
            Query(picture=pictures[1], limit=5),  # duplicate: must deduplicate
        ]
        serial = engine.run_batch(queries, executor="serial")
        gathered = engine.run_batch(queries, executor="shard_process", workers=workers)
        assert [result_key(r) for r in serial] == [result_key(r) for r in gathered]
        report = engine.last_batch_report
        assert report.executor == "shard_process"
        assert report.total_queries == 3
        assert report.unique_evaluations == 2


@pytest.mark.parametrize("workers", WORKER_COUNTS)
class TestAbsentVocabulary:
    """Symbols outside the indexed vocabulary behave identically everywhere.

    Pinned behaviour (the regression contract): a crisp predicate naming an
    absent label fails on every image — with the default ``minimum_score`` of
    0.0 every image is still *returned*, at score 0.0.  A graded leaf over
    absent labels has degree 0.0, so ``not`` over it fails open to 1.0.  The
    serial engine and the shard_process scatter must agree byte for byte.
    """

    def test_crisp_absent_symbol(self, engine, pictures, workers):
        predicate = parse_predicate("ghost left-of phantom")
        spec = QuerySpec(predicates=(predicate,), limit=None)
        serial = engine.execute_spec(spec)
        gathered = engine.execute_spec(spec.with_overrides(execution=sharded(workers)))
        assert predicate_key(serial.results) == predicate_key(gathered.results)
        assert len(serial.results) == DATABASE_SIZE
        assert all(match.score == 0.0 for match in serial.results)

    def test_crisp_minimum_score_drops_absent(self, engine, pictures, workers):
        predicate = parse_predicate("ghost left-of phantom")
        spec = QuerySpec(predicates=(predicate,), limit=None, minimum_score=0.5)
        serial = engine.execute_spec(spec)
        gathered = engine.execute_spec(spec.with_overrides(execution=sharded(workers)))
        assert predicate_key(serial.results) == predicate_key(gathered.results)
        assert serial.results == []

    def test_graded_absent_symbol(self, engine, pictures, workers):
        tree = parse_tree("ghost left-of phantom [fuzzy]")
        spec = QuerySpec(predicate_tree=tree, limit=None)
        serial = engine.execute_spec(spec)
        gathered = engine.execute_spec(spec.with_overrides(execution=sharded(workers)))
        assert graded_key(serial.results) == graded_key(gathered.results)
        assert len(serial.results) == DATABASE_SIZE
        assert all(match.degree == 0.0 for match in serial.results)

    def test_negated_absent_symbol_fails_open(self, engine, pictures, workers):
        tree = parse_tree("not ghost left-of phantom")
        spec = QuerySpec(predicate_tree=tree, limit=None)
        serial = engine.execute_spec(spec)
        gathered = engine.execute_spec(spec.with_overrides(execution=sharded(workers)))
        assert graded_key(serial.results) == graded_key(gathered.results)
        assert all(match.degree == 1.0 for match in serial.results)

    def test_combined_with_absent_symbol(self, engine, pictures, workers):
        labels = sorted(set(pictures[3].labels))
        tree = parse_tree(f"ghost left-of phantom [fuzzy] or {labels[0]} same-row {labels[1]}")
        spec = QuerySpec(picture=pictures[3], predicate_tree=tree, limit=None)
        serial = engine.execute_spec(spec)
        gathered = engine.execute_spec(spec.with_overrides(execution=sharded(workers)))
        assert result_key(serial.results) == result_key(gathered.results)


class TestGradedShortlistSoundness:
    """The graded label bound never costs a result the full scan returns."""

    def _trees(self, pictures):
        labels = sorted({label for picture in pictures[:6] for label in picture.labels})
        a, b, c = labels[0], labels[1], labels[-1]
        return [
            parse_tree(f"{a} left_of {b} [fuzzy]"),
            parse_tree(f"not {a} left_of {b} or {b} above {c} [fuzzy w=2]"),
            parse_tree(f"{a} same-column {b} [fuzzy] and {c} overlaps {b} [fuzzy]"),
            parse_tree(f"ghost inside {a} [fuzzy] or {b} below {c}"),
        ]

    @pytest.mark.parametrize("minimum_score", [0.0, 0.3, 0.7])
    def test_predicate_only_matches_unfiltered_scan(self, engine, pictures, minimum_score):
        for tree in self._trees(pictures):
            spec = QuerySpec(predicate_tree=tree, limit=None, minimum_score=minimum_score)
            filtered = engine.execute_spec(spec)
            full = engine.execute_spec(spec.with_overrides(use_filters=False))
            assert graded_key(filtered.results) == graded_key(full.results)
            assert {m.image_id for m in full.results} <= {
                m.image_id for m in filtered.results
            }

    @pytest.mark.parametrize("strategy", ["exhaustive", "anytime"])
    def test_combined_matches_unfiltered_scan(self, engine, pictures, strategy):
        options = ExecutionOptions(strategy=strategy)
        for index, tree in enumerate(self._trees(pictures)):
            spec = QuerySpec(
                picture=pictures[index],
                predicate_tree=tree,
                limit=None,
                minimum_score=0.2,
                execution=options,
            )
            filtered = engine.execute_spec(spec)
            full = engine.execute_spec(spec.with_overrides(use_filters=False))
            assert result_key(filtered.results) == result_key(full.results)


class TestCountersAndStats:
    def test_execution_counters_flow_back(self, engine, pictures):
        before = engine.execution_counters.statistics
        engine.execute_spec(
            QuerySpec(picture=pictures[0], limit=5, execution=sharded(2))
        )
        after = engine.execution_counters.statistics
        assert after.queries == before.queries + 1
        assert after.admitted > before.admitted
        assert after.examined > before.examined

    def test_shortlist_counters_flow_back(self, engine, pictures):
        before = engine.shortlist_counters.statistics
        engine.execute_spec(
            QuerySpec(picture=pictures[0], limit=5, execution=sharded(2))
        )
        after = engine.shortlist_counters.statistics
        assert after.queries == before.queries + 1
        assert after.admitted > before.admitted

    def test_trace_is_merged(self, engine, pictures):
        outcome = engine.execute_spec(
            QuerySpec(picture=pictures[0], limit=5, execution=sharded(2))
        )
        assert outcome.trace.database_size == DATABASE_SIZE
        assert outcome.trace.shortlisted > 0
        assert outcome.trace.candidates

    def test_pool_stats_block(self, engine, pictures):
        assert engine.shard_pool_stats() is None
        engine.execute_spec(
            QuerySpec(picture=pictures[0], limit=5, execution=sharded(2))
        )
        stats = engine.shard_pool_stats()
        assert stats["count"] == 2
        assert stats["scatters"] == 1
        assert stats["restarts"] == 0
        assert stats["scatter_latency_ms"]["mean"] > 0
        assert len(stats["workers"]) == 2
        assert sum(entry["images"] for entry in stats["workers"]) == DATABASE_SIZE
        assert all(entry["alive"] for entry in stats["workers"])


class TestLifecycle:
    def test_mutation_invalidates_pool(self, engine, pictures):
        spec = QuerySpec(picture=pictures[0], limit=5, execution=sharded(2))
        engine.execute_spec(spec)
        assert engine.shard_pool_stats() is not None
        engine.remove_picture("img-001")
        assert engine.shard_pool_stats() is None
        serial = engine.execute_spec(QuerySpec(picture=pictures[0], limit=5))
        gathered = engine.execute_spec(spec)
        assert result_key(serial.results) == result_key(gathered.results)
        assert all(r.image_id != "img-001" for r in gathered.results)

    def test_worker_count_change_rebuilds_pool(self, engine, pictures):
        engine.execute_spec(QuerySpec(picture=pictures[0], limit=5, execution=sharded(2)))
        assert engine.shard_pool_stats()["count"] == 2
        engine.execute_spec(QuerySpec(picture=pictures[0], limit=5, execution=sharded(3)))
        assert engine.shard_pool_stats()["count"] == 3

    def test_close_is_idempotent(self, engine, pictures):
        engine.execute_spec(QuerySpec(picture=pictures[0], limit=5, execution=sharded(2)))
        engine.close_shard_pool()
        engine.close_shard_pool()
        assert engine.shard_pool_stats() is None

    def test_closed_pool_refuses_queries(self, pictures):
        database = ImageDatabase()
        for index, picture in enumerate(pictures[:8]):
            database.add_picture(picture, f"img-{index:03d}")
        pool = ShardWorkerPool(2, database)
        pool.close()
        with pytest.raises(ShardWorkerError):
            pool.execute_spec(QuerySpec(picture=pictures[0], limit=3))


class TestCrashRecovery:
    def test_worker_crash_between_queries_restarts(self, engine, pictures):
        spec = QuerySpec(picture=pictures[0], limit=5, execution=sharded(2))
        serial_key = result_key(engine.execute_spec(QuerySpec(picture=pictures[0], limit=5)).results)
        engine.execute_spec(spec)
        pool = engine._shard_pool
        victim = pool._workers[0]
        victim.process.kill()
        victim.process.join(timeout=5)
        recovered = engine.execute_spec(spec)
        assert result_key(recovered.results) == serial_key
        stats = engine.shard_pool_stats()
        assert stats["restarts"] >= 1
        assert all(entry["alive"] for entry in stats["workers"])

    def test_worker_crash_mid_query_recovers(self, pictures):
        import threading
        import time

        database = ImageDatabase()
        for index, picture in enumerate(pictures):
            database.add_picture(picture, f"img-{index:03d}")
        engine = QueryEngine.build(database)
        specs = [
            QuerySpec(
                picture=pictures[index], transformations=tuple(Transformation), limit=5
            )
            for index in range(10)
        ]
        serial = [result_key(engine.execute_spec(spec).results) for spec in specs]
        pool = ShardWorkerPool(2, database)
        try:
            # The scatter below takes a while (10 invariant queries); kill a
            # worker shortly after it starts so the death lands mid-query.
            # Whichever way the pool notices (EOF on gather, broken pipe on
            # a resend), it must restart the worker and finish correctly.
            for _ in range(3):
                victim = pool._workers[1]
                killer = threading.Timer(0.05, victim.process.kill)
                killer.start()
                gathered = pool.execute_many(specs)
                killer.cancel()
                assert [result_key(outcome.results) for outcome in gathered] == serial
                if sum(worker.restarts for worker in pool._workers) >= 1:
                    break
                time.sleep(0.01)
            assert sum(worker.restarts for worker in pool._workers) >= 1
            assert all(worker.process.is_alive() for worker in pool._workers)
        finally:
            pool.close()
            engine.close_shard_pool()

    def test_restart_budget_exhaustion_raises(self, pictures):
        database = ImageDatabase()
        for index, picture in enumerate(pictures[:8]):
            database.add_picture(picture, f"img-{index:03d}")
        pool = ShardWorkerPool(1, database, max_restarts=0)
        pool._workers[0].process.kill()
        pool._workers[0].process.join(timeout=5)
        with pytest.raises(ShardWorkerError):
            pool.execute_spec(QuerySpec(picture=pictures[0], limit=3))
        pool.close()

    def test_failed_scatter_does_not_poison_the_next_query(self, pictures):
        # An aborted gather (here: worker 0 dead with the budget exhausted)
        # leaves the *surviving* worker with queued requests and buffered
        # 'ok' responses for the old batch.  The pool must discard all of
        # that before serving another query — otherwise the next gather
        # attributes the stale responses to its own request ids and returns
        # the wrong query's results.
        database = ImageDatabase()
        for index, picture in enumerate(pictures[:12]):
            database.add_picture(picture, f"img-{index:03d}")
        engine = QueryEngine.build(database)
        pool = ShardWorkerPool(2, database, max_restarts=0)
        try:
            pool._workers[0].process.kill()
            pool._workers[0].process.join(timeout=5)
            specs = [QuerySpec(picture=pictures[index], limit=3) for index in range(4)]
            with pytest.raises(ShardWorkerError):
                pool.execute_many(specs)
            probe = QuerySpec(picture=pictures[5], limit=3)
            outcome = pool.execute_spec(probe)
            expected = engine.execute_spec(probe)
            assert result_key(outcome.results) == result_key(expected.results)
            assert all(worker.process.is_alive() for worker in pool._workers)
        finally:
            pool.close()
            engine.close_shard_pool()

    def test_worker_error_response_does_not_poison_the_pool(self, pictures):
        # An empty spec passes the parent (the pool never validates) but is
        # rejected by every worker's engine — an 'error' response.  The
        # surviving workers' buffered answers for the same batch must not
        # leak into the next scatter, and the pool must stay usable.
        database = ImageDatabase()
        for index, picture in enumerate(pictures[:12]):
            database.add_picture(picture, f"img-{index:03d}")
        engine = QueryEngine.build(database)
        pool = ShardWorkerPool(2, database)
        try:
            good = [QuerySpec(picture=pictures[index], limit=3) for index in range(3)]
            with pytest.raises(ShardWorkerError):
                pool.execute_many(good + [QuerySpec()])
            probe = QuerySpec(picture=pictures[4], limit=3)
            outcome = pool.execute_spec(probe)
            expected = engine.execute_spec(probe)
            assert result_key(outcome.results) == result_key(expected.results)
        finally:
            pool.close()
            engine.close_shard_pool()


class TestPipePressure:
    def test_large_batch_with_unbounded_limits_completes(self, engine, pictures):
        # Both pipe directions well past the ~64KiB OS buffer: dozens of
        # specs outbound, and unbounded rankings plus full per-candidate
        # traces inbound.  A scatter that wrote every request before reading
        # any response would deadlock here (worker blocked writing, parent
        # blocked sending); the streaming sender/gather must complete and
        # stay byte-identical to the serial engine.
        specs = [
            QuerySpec(picture=pictures[index % len(pictures)], limit=None)
            for index in range(48)
        ]
        serial = [result_key(engine.execute_spec(spec).results) for spec in specs]
        pool = ShardWorkerPool(2, engine.database)
        try:
            gathered = pool.execute_many(specs)
            assert [result_key(outcome.results) for outcome in gathered] == serial
        finally:
            pool.close()


class TestStatsUnderLoad:
    def test_stats_does_not_queue_behind_an_inflight_scatter(self, pictures):
        import threading

        database = ImageDatabase()
        for index, picture in enumerate(pictures[:8]):
            database.add_picture(picture, f"img-{index:03d}")
        pool = ShardWorkerPool(2, database)
        try:
            collected = {}

            def snapshot():
                collected["stats"] = pool.stats()

            # Holding the scatter mutex models a long in-flight batch; the
            # /stats path must answer anyway.
            with pool._lock:
                thread = threading.Thread(target=snapshot, daemon=True)
                thread.start()
                thread.join(timeout=5)
            assert "stats" in collected, "stats() blocked on the scatter mutex"
            assert collected["stats"]["count"] == 2
        finally:
            pool.close()


class TestWarmStart:
    def test_disk_warm_start_loads_only_owned_shards(self, pictures, tmp_path):
        database = ImageDatabase()
        for index, picture in enumerate(pictures):
            database.add_picture(picture, f"img-{index:03d}")
        source = tmp_path / "shards"
        ShardedBackend(shard_count=8).save(database, source)
        engine = QueryEngine.build(database)
        engine.shard_source = source
        serial = engine.execute_spec(QuerySpec(picture=pictures[0], limit=6))
        gathered = engine.execute_spec(
            QuerySpec(picture=pictures[0], limit=6, execution=sharded(2))
        )
        assert result_key(serial.results) == result_key(gathered.results)
        stats = engine.shard_pool_stats()
        assert stats["warm_start"] == "shards"
        assert stats["shard_count"] == 8
        assert sum(entry["images"] for entry in stats["workers"]) == DATABASE_SIZE
        engine.close_shard_pool()

    def test_mutation_disables_stale_disk_source(self, pictures, tmp_path):
        database = ImageDatabase()
        for index, picture in enumerate(pictures):
            database.add_picture(picture, f"img-{index:03d}")
        source = tmp_path / "shards"
        ShardedBackend(shard_count=8).save(database, source)
        engine = QueryEngine.build(database)
        engine.shard_source = source
        engine.remove_picture("img-000")  # disk now lags memory
        gathered = engine.execute_spec(
            QuerySpec(picture=pictures[1], limit=6, execution=sharded(2))
        )
        assert all(r.image_id != "img-000" for r in gathered.results)
        assert engine.shard_pool_stats()["warm_start"] == "fork"
        engine.close_shard_pool()

    def test_unreadable_source_falls_back_to_fork(self, pictures, tmp_path):
        database = ImageDatabase()
        for index, picture in enumerate(pictures[:8]):
            database.add_picture(picture, f"img-{index:03d}")
        pool = ShardWorkerPool(2, database, shard_source=tmp_path / "missing")
        outcome = pool.execute_spec(QuerySpec(picture=pictures[0], limit=3))
        assert outcome.results
        assert pool.stats()["warm_start"] == "fork"
        pool.close()


class TestShardOwnership:
    def test_every_shard_has_exactly_one_owner(self, pictures):
        database = ImageDatabase()
        for index, picture in enumerate(pictures[:8]):
            database.add_picture(picture, f"img-{index:03d}")
        for workers in (1, 2, 3, 4, 7):
            pool = ShardWorkerPool(workers, database)
            owners = [pool._owner_of(shard) for shard in range(pool.shard_count)]
            assert set(owners) <= set(range(workers))
            seen = {}
            for worker in pool._workers:
                for shard in worker.owned:
                    assert shard not in seen
                    seen[shard] = worker.worker_id
            assert len(seen) == pool.shard_count
            pool.close()

    def test_owned_slices_respect_crc32_mapping(self, pictures):
        database = ImageDatabase()
        for index, picture in enumerate(pictures[:12]):
            database.add_picture(picture, f"img-{index:03d}")
        pool = ShardWorkerPool(3, database)
        for worker in pool._workers:
            owned = set(worker.owned)
            expected = sum(
                1
                for image_id in database.image_ids
                if shard_index_for(image_id, pool.shard_count) in owned
            )
            assert worker.images == expected
        pool.close()


class TestSanitisation:
    def test_sanitized_execution_strips_shard_executor(self):
        options = ExecutionOptions(executor="shard_process", workers=4)
        cleaned = sanitized_execution(options)
        assert cleaned.executor == "serial"
        assert sanitized_execution(None).executor == "serial"

    def test_spec_for_worker_strips_shard_executor(self, pictures):
        spec = QuerySpec(picture=pictures[0], execution=sharded(2))
        prepared = spec_for_worker(spec)
        assert prepared.execution.executor == "serial"
        plain = QuerySpec(picture=pictures[0])
        assert spec_for_worker(plain) is plain

    def test_invalid_worker_count_rejected(self, pictures):
        database = ImageDatabase()
        database.add_picture(pictures[0], "img-000")
        with pytest.raises(ValueError):
            ShardWorkerPool(0, database)
