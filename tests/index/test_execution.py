"""ExecutionOptions semantics and kernel/strategy ranking equivalence.

Two halves.  The unit half pins the options value object: vocabulary
validation, ``None``-means-inherit overlay order, dict round-trips, and the
cumulative counters the service ``/stats`` endpoint surfaces.  The
equivalence half is the load-bearing one: every combination of kernel
(``bitparallel``/``reference``) and strategy (``anytime``/``exhaustive``)
must produce rankings byte-identical — tie-breaks, transformations and all —
to the historical reference/exhaustive path, across exact, invariant,
partial, predicate-combined and min-score query modes.  A single divergence
means either the kernel mis-scored or the branch-and-bound cut off a
candidate it had no right to drop (see ``docs/kernels.md``).
"""

import pytest

from repro.datasets.synthetic import SceneParameters, random_pictures
from repro.index.execution import (
    DEFAULT_EXECUTION,
    ExecutionCounters,
    ExecutionOptions,
    KERNEL_BITPARALLEL,
    KERNEL_REFERENCE,
    STRATEGY_ANYTIME,
    STRATEGY_EXHAUSTIVE,
)
from repro.retrieval.system import RetrievalSystem

_PARAMETERS = SceneParameters(
    object_count=6,
    labels=tuple(f"label{index:02d}" for index in range(10)),
    label_choice="random",
)

#: Every non-default scoring configuration under test.
_CONFIGS = [
    pytest.param(ExecutionOptions(kernel=KERNEL_BITPARALLEL), id="kernel"),
    pytest.param(ExecutionOptions(strategy=STRATEGY_ANYTIME), id="anytime"),
    pytest.param(
        ExecutionOptions(kernel=KERNEL_BITPARALLEL, strategy=STRATEGY_ANYTIME),
        id="kernel+anytime",
    ),
]


def result_key(results):
    """Everything a ranking is judged on, including tie-break order."""
    return [
        (r.rank, r.image_id, r.score, r.similarity.transformation)
        for r in results
    ]


class TestOptionsValidation:
    def test_rejects_unknown_kernel(self):
        with pytest.raises(ValueError, match="kernel"):
            ExecutionOptions(kernel="simd")

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError, match="strategy"):
            ExecutionOptions(strategy="eventually")

    def test_rejects_unknown_executor(self):
        with pytest.raises(ValueError, match="executor"):
            ExecutionOptions(executor="fork")

    @pytest.mark.parametrize("field", ["workers", "chunk_size"])
    def test_rejects_non_positive_pool_sizes(self, field):
        with pytest.raises(ValueError, match=field):
            ExecutionOptions(**{field: 0})

    def test_default_is_all_inherit(self):
        options = ExecutionOptions()
        assert options.describe() == "inherit-all"
        assert options.to_dict() == {}


class TestOverlayAndResolve:
    def test_non_none_fields_win(self):
        base = ExecutionOptions(kernel=KERNEL_REFERENCE, workers=2)
        override = ExecutionOptions(kernel=KERNEL_BITPARALLEL, cache=False)
        merged = base.overlaid(override)
        assert merged.kernel == KERNEL_BITPARALLEL  # overridden
        assert merged.workers == 2  # inherited
        assert merged.cache is False  # newly set

    def test_overlaid_none_is_identity(self):
        options = ExecutionOptions(strategy=STRATEGY_ANYTIME)
        assert options.overlaid(None) is options

    def test_resolved_fills_documented_defaults(self):
        resolved = ExecutionOptions(strategy=STRATEGY_ANYTIME).resolved()
        assert resolved.strategy == STRATEGY_ANYTIME
        assert resolved.kernel == DEFAULT_EXECUTION.kernel
        assert resolved.shortlist is True
        assert resolved.cache is True

    def test_is_default_scoring(self):
        assert ExecutionOptions().is_default_scoring
        assert ExecutionOptions(kernel=KERNEL_REFERENCE).is_default_scoring
        assert not ExecutionOptions(kernel=KERNEL_BITPARALLEL).is_default_scoring
        assert not ExecutionOptions(strategy=STRATEGY_ANYTIME).is_default_scoring


class TestDictRoundTrip:
    def test_round_trip_preserves_set_fields(self):
        options = ExecutionOptions(
            kernel=KERNEL_BITPARALLEL, strategy=STRATEGY_ANYTIME, workers=3
        )
        assert ExecutionOptions.from_dict(options.to_dict()) == options

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="turbo"):
            ExecutionOptions.from_dict({"turbo": True})

    def test_from_dict_validates_values(self):
        with pytest.raises(ValueError, match="kernel"):
            ExecutionOptions.from_dict({"kernel": "simd"})


class TestCounters:
    def test_record_and_snapshot(self):
        counters = ExecutionCounters()
        counters.record(admitted=10, examined=4, anytime=True)
        counters.record(admitted=5, examined=5, anytime=False)
        statistics = counters.statistics
        assert statistics.queries == 2
        assert statistics.anytime_queries == 1
        assert statistics.admitted == 15
        assert statistics.examined == 9
        assert statistics.skipped == 6
        assert statistics.examined_fraction == pytest.approx(9 / 15)

    def test_reset_zeroes_everything(self):
        counters = ExecutionCounters()
        counters.record(admitted=3, examined=3, anytime=False)
        counters.reset()
        statistics = counters.statistics
        assert statistics.queries == 0
        assert statistics.examined_fraction == 0.0


class TestRankingEquivalence:
    """Every kernel × strategy combination ranks like the reference path."""

    @pytest.fixture(scope="class")
    def system(self):
        pictures = random_pictures(60, seed=91, parameters=_PARAMETERS)
        return RetrievalSystem.from_pictures(pictures)

    @pytest.fixture(scope="class")
    def queries(self):
        return random_pictures(5, seed=17, parameters=_PARAMETERS)

    def _compare(self, system, configure):
        """Assert a builder recipe ranks identically under every config."""
        reference = result_key(
            configure(system).execution(cache=False).execute()
        )
        for config in (
            ExecutionOptions(kernel=KERNEL_BITPARALLEL),
            ExecutionOptions(strategy=STRATEGY_ANYTIME),
            ExecutionOptions(kernel=KERNEL_BITPARALLEL, strategy=STRATEGY_ANYTIME),
        ):
            variant = result_key(
                configure(system).execution(config).execution(cache=False).execute()
            )
            assert variant == reference, f"diverged under {config.describe()}"

    def test_exact_mode(self, system, queries):
        for picture in queries:
            self._compare(system, lambda s: s.query(picture).limit(10))

    def test_invariant_mode(self, system, queries):
        for picture in queries[:3]:
            self._compare(system, lambda s: s.query(picture).invariant().limit(10))

    def test_partial_mode(self, system, queries):
        for picture in queries[:3]:
            identifiers = [icon.identifier for icon in list(picture)[:3]]
            self._compare(
                system, lambda s: s.query(picture).partial(identifiers).limit(10)
            )

    def test_predicate_combined_mode(self, system, queries):
        labels = sorted(queries[0].labels)
        predicate = f"{labels[0]} left-of {labels[1]}"
        for picture in queries[:3]:
            self._compare(
                system, lambda s: s.query(picture).where(predicate).limit(10)
            )

    def test_min_score_and_unlimited(self, system, queries):
        for picture in queries[:3]:
            self._compare(
                system, lambda s: s.query(picture).limit(None).min_score(0.3)
            )


class TestAnytimeObservability:
    @pytest.fixture(scope="class")
    def system(self):
        pictures = random_pictures(80, seed=23, parameters=_PARAMETERS)
        return RetrievalSystem.from_pictures(pictures)

    def test_anytime_skips_candidates_and_traces_cutoff(self, system):
        query = random_pictures(1, seed=5, parameters=_PARAMETERS)[0]
        results = (
            system.query(query)
            .limit(5)
            .execution(strategy=STRATEGY_ANYTIME, cache=False)
            .execute()
        )
        trace = results.trace
        assert trace.strategy == STRATEGY_ANYTIME
        assert trace.candidates_examined >= len(results)
        assert trace.bound_skipped > 0
        assert trace.bound_cutoff is not None
        assert trace.candidates_examined + trace.bound_skipped == trace.shortlisted

    def test_exhaustive_trace_examines_everything(self, system):
        query = random_pictures(1, seed=5, parameters=_PARAMETERS)[0]
        results = (
            system.query(query).limit(5).execution(cache=False).execute()
        )
        trace = results.trace
        assert trace.strategy == STRATEGY_EXHAUSTIVE
        assert trace.kernel == KERNEL_REFERENCE
        assert trace.bound_skipped == 0
        assert trace.bound_cutoff is None

    def test_explain_report_names_the_execution(self, system):
        query = random_pictures(1, seed=6, parameters=_PARAMETERS)[0]
        report = (
            system.query(query)
            .limit(5)
            .execution(kernel=KERNEL_BITPARALLEL, strategy=STRATEGY_ANYTIME)
            .execution(cache=False)
            .explain()
        )
        assert "kernel=bitparallel" in report
        assert "strategy=anytime" in report
        assert "candidates_examined=" in report

    def test_engine_counters_accumulate(self, system):
        system._engine.execution_counters.reset()
        query = random_pictures(1, seed=7, parameters=_PARAMETERS)[0]
        system.query(query).limit(5).execution(
            strategy=STRATEGY_ANYTIME, cache=False
        ).execute()
        statistics = system.execution_statistics()
        assert statistics.queries == 1
        assert statistics.anytime_queries == 1
        assert statistics.examined <= statistics.admitted

    def test_full_scan_degrades_to_exhaustive(self, system):
        # Without the shortlist there are no bounds to order by, so the
        # anytime request must fall back (and say so in the trace).
        query = random_pictures(1, seed=8, parameters=_PARAMETERS)[0]
        results = (
            system.query(query)
            .limit(5)
            .execution(strategy=STRATEGY_ANYTIME, shortlist=False, cache=False)
            .execute()
        )
        assert result_key(results) == result_key(
            system.query(query).limit(5).execution(cache=False).execute()
        )
        assert results.trace.strategy == STRATEGY_EXHAUSTIVE
