"""Property/fuzz tests of the write-ahead log (``repro.index.wal``).

Two contracts from ``docs/durability.md``:

* **Round-trip**: any sequence of valid upsert/delete records appended to a
  log reads back identically (LSNs, ops, entries), across random payload
  shapes and log sizes.
* **Fail-closed tail recovery**: whatever a crash does to the file's tail —
  truncation at any byte, a flipped CRC/payload byte, a partial final
  record, framed garbage — reading recovers exactly the longest valid
  prefix, reopening truncates the damage away, and nothing ever escapes as
  an exception other than :class:`~repro.index.storage.StorageError` (and
  that only for a file that is not a log at all).
"""

import json
import struct
import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.index.storage import StorageError
from repro.index.wal import (
    WAL_FORMAT_VERSION,
    WAL_MAGIC,
    WalRecord,
    WalTailer,
    WalTruncatedError,
    WriteAheadLog,
    read_wal,
)

_HEADER = WAL_MAGIC + bytes([WAL_FORMAT_VERSION])


def _entry(image_id: str, payload: dict) -> dict:
    return {"image_id": image_id, "picture": payload, "bestring": {"x": [], "y": []}}


#: Random mutation streams: (op, image_id, entry-payload-shape) triples.
_operations = st.lists(
    st.tuples(
        st.sampled_from(["upsert", "delete"]),
        st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=0x2FF),
            min_size=1,
            max_size=12,
        ),
        st.dictionaries(
            st.text(min_size=1, max_size=6),
            st.one_of(st.integers(), st.floats(allow_nan=False), st.text(max_size=8)),
            max_size=4,
        ),
    ),
    min_size=1,
    max_size=12,
)


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(operations=_operations)
    def test_random_streams_read_back_identically(self, tmp_path_factory, operations):
        path = tmp_path_factory.mktemp("wal") / "wal.log"
        expected = []
        with WriteAheadLog(path) as log:
            for op, image_id, payload in operations:
                entry = _entry(image_id, payload) if op == "upsert" else None
                lsn = log.append(op, image_id, entry)
                expected.append(WalRecord(lsn=lsn, op=op, image_id=image_id, entry=entry))
        records, _, clean = read_wal(path)
        assert clean
        assert records == expected
        assert [record.lsn for record in records] == list(
            range(1, len(operations) + 1)
        )

    def test_record_payload_round_trip(self):
        record = WalRecord(
            lsn=7, op="upsert", image_id="img-7", entry=_entry("img-7", {"k": 1})
        )
        assert WalRecord.from_payload(record.to_payload()) == record
        delete = WalRecord(lsn=8, op="delete", image_id="img-7")
        assert WalRecord.from_payload(delete.to_payload()) == delete

    def test_lsns_resume_after_reopen(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as log:
            log.append("delete", "a")
            log.append("delete", "b")
        with WriteAheadLog(path) as log:
            assert log.last_lsn == 2
            assert log.append("delete", "c") == 3

    def test_floor_lsn_survives_truncation(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as log:
            log.append("delete", "a")
            log.append("delete", "b")
            log.truncate_through(2)
            assert len(log) == 0
            # LSNs never move backwards across a compaction.
            assert log.append("delete", "c") == 3
        records, _, clean = read_wal(path)
        assert clean and [record.lsn for record in records] == [3]


def _build_log(path, count=4):
    """A clean log of ``count`` delete records; returns its records."""
    with WriteAheadLog(path) as log:
        for index in range(count):
            log.append("delete", f"img-{index}")
    records, _, clean = read_wal(path)
    assert clean and len(records) == count
    return records


class TestCorruptionMatrix:
    """Every damage mode recovers fail-closed to the last valid LSN."""

    def test_truncated_tail_at_every_byte(self, tmp_path):
        path = tmp_path / "wal.log"
        records = _build_log(path)
        data = path.read_bytes()
        boundaries = self._frame_boundaries(data)
        for cut in range(len(_HEADER), len(data)):
            path.write_bytes(data[:cut])
            recovered, valid_bytes, clean = read_wal(path)
            survivors = sum(1 for boundary in boundaries if boundary <= cut)
            assert len(recovered) == survivors
            assert recovered == records[:survivors]
            assert valid_bytes <= cut
            assert clean == (cut == len(_HEADER) or cut in boundaries)

    @staticmethod
    def _frame_boundaries(data):
        offsets = []
        offset = len(_HEADER)
        while offset < len(data):
            length, _ = struct.unpack_from("<II", data, offset)
            offset += 8 + length
            offsets.append(offset)
        return offsets

    def test_flipped_byte_anywhere_in_final_record(self, tmp_path):
        path = tmp_path / "wal.log"
        records = _build_log(path)
        data = path.read_bytes()
        boundaries = self._frame_boundaries(data)
        final_start = boundaries[-2]
        for position in range(final_start, len(data)):
            corrupted = bytearray(data)
            corrupted[position] ^= 0x40
            path.write_bytes(bytes(corrupted))
            recovered, _, clean = read_wal(path)
            assert not clean
            # The damaged final record is dropped; the prefix survives.  A
            # flipped length byte may also swallow the record into a torn
            # frame — either way nothing past the prefix is trusted.
            assert recovered == records[:-1]

    def test_partial_final_record_then_append_resumes(self, tmp_path):
        path = tmp_path / "wal.log"
        records = _build_log(path)
        data = path.read_bytes()
        path.write_bytes(data[:-5])  # tear the final record mid-payload
        with WriteAheadLog(path) as log:
            assert not log.recovered_clean
            assert log.records == records[:-1]
            assert log.last_lsn == records[-2].lsn
            new_lsn = log.append("delete", "resumed")
        assert new_lsn == records[-2].lsn + 1
        recovered, _, clean = read_wal(path)
        assert clean
        assert [record.image_id for record in recovered][-1] == "resumed"

    def test_framed_garbage_payload_fails_closed(self, tmp_path):
        path = tmp_path / "wal.log"
        records = _build_log(path, count=2)
        garbage = b'["not", "a", "record"]'
        frame = struct.pack("<II", len(garbage), zlib.crc32(garbage)) + garbage
        with open(path, "ab") as handle:
            handle.write(frame)
        recovered, _, clean = read_wal(path)
        assert not clean
        assert recovered == records

    def test_non_monotonic_lsn_fails_closed(self, tmp_path):
        path = tmp_path / "wal.log"
        records = _build_log(path, count=2)
        stale = json.dumps(
            {"lsn": 1, "op": "delete", "image_id": "replayed"}
        ).encode("utf-8")
        frame = struct.pack("<II", len(stale), zlib.crc32(stale)) + stale
        with open(path, "ab") as handle:
            handle.write(frame)
        recovered, _, clean = read_wal(path)
        assert not clean
        assert recovered == records

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_fuzzed_damage_never_raises_past_storage_error(
        self, tmp_path_factory, data
    ):
        """Arbitrary tail damage: recover a prefix or raise StorageError only."""
        path = tmp_path_factory.mktemp("fuzz") / "wal.log"
        records = _build_log(path, count=3)
        blob = bytearray(path.read_bytes())
        for _ in range(data.draw(st.integers(min_value=1, max_value=6))):
            position = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
            blob[position] = data.draw(st.integers(min_value=0, max_value=255))
        cut = data.draw(st.integers(min_value=0, max_value=len(blob)))
        path.write_bytes(bytes(blob[:cut]))
        try:
            recovered, valid_bytes, clean = read_wal(path)
        except StorageError:
            return  # damaged magic/version: not a log, clearly reported
        assert valid_bytes <= cut
        assert len(recovered) <= len(records)
        for position, record in enumerate(recovered):
            assert record.lsn >= position + 1
        # Reopening for append must accept whatever read_wal accepted.
        with WriteAheadLog(path) as log:
            assert log.records == recovered


class TestErrorContract:
    def test_not_a_log_names_the_path(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"PK\x03\x04 definitely a zip file")
        with pytest.raises(StorageError, match="wal.log"):
            read_wal(path)
        with pytest.raises(StorageError, match="wal.log"):
            WriteAheadLog(path)

    def test_unsupported_version_names_the_path(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(WAL_MAGIC + bytes([99]))
        with pytest.raises(StorageError, match="wal.log"):
            read_wal(path)

    def test_unreadable_file_names_the_path(self, tmp_path):
        path = tmp_path / "wal.log"
        path.mkdir()  # a directory is unreadable as a file
        with pytest.raises(StorageError, match="wal.log"):
            read_wal(path)

    def test_missing_file_reads_as_empty_clean_log(self, tmp_path):
        records, valid_bytes, clean = read_wal(tmp_path / "absent.log")
        assert records == [] and valid_bytes == 0 and clean

    def test_append_validates_op_and_entry(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal.log") as log:
            with pytest.raises(ValueError):
                log.append("rename", "a")
            with pytest.raises(ValueError):
                log.append("upsert", "a")  # an upsert requires the entry


class TestWalTailer:
    """The follower protocol: incremental, torn-tolerant, truncation-aware."""

    def test_polls_yield_records_past_the_cursor_in_order(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as log:
            tailer = WalTailer(path)
            assert tailer.poll() == []
            log.append("delete", "a")
            log.append("delete", "b")
            first = tailer.poll()
            assert [record.lsn for record in first] == [1, 2]
            assert tailer.poll() == []  # caught up
            log.append("upsert", "c", _entry("c", {}))
            second = tailer.poll()
            assert [record.lsn for record in second] == [3]
            assert second[0].op == "upsert" and second[0].entry is not None

    def test_from_lsn_skips_already_applied_records(self, tmp_path):
        path = tmp_path / "wal.log"
        _build_log(path, count=5)
        tailer = WalTailer(path, from_lsn=3)
        assert [record.lsn for record in tailer.poll()] == [4, 5]

    def test_missing_file_polls_empty_until_created(self, tmp_path):
        path = tmp_path / "wal.log"
        tailer = WalTailer(path)
        assert tailer.poll() == []
        with WriteAheadLog(path) as log:
            log.append("delete", "a")
        assert [record.lsn for record in tailer.poll()] == [1]

    def test_torn_tail_ends_the_batch_and_retries(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as log:
            log.append("delete", "a")
        tailer = WalTailer(path)
        assert len(tailer.poll()) == 1
        # Simulate a half-written append: frame prefix only.
        whole = path.read_bytes()
        with open(path, "ab") as handle:
            handle.write(struct.pack("<II", 999, 0))
        assert tailer.poll() == []  # never yields the torn frame
        # The append completes (writer rewrites the tail properly).
        record = WalRecord(lsn=2, op="delete", image_id="b")
        payload = record.to_payload()
        path.write_bytes(
            whole + struct.pack("<II", len(payload), zlib.crc32(payload)) + payload
        )
        polled = tailer.poll()
        assert [item.lsn for item in polled] == [2]

    def test_resumes_across_truncation_when_cursor_is_covered(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as log:
            for index in range(4):
                log.append("delete", f"img-{index}")
            tailer = WalTailer(path)
            assert len(tailer.poll()) == 4
            # Compaction: drop everything the tailer has already applied.
            log.truncate_through(4)
            assert tailer.poll() == []
            log.append("delete", "later")
            assert [record.lsn for record in tailer.poll()] == [5]

    def test_truncation_past_the_cursor_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as log:
            log.append("delete", "a")
            log.append("delete", "b")
            tailer = WalTailer(path)
            assert len(tailer.poll()) == 1 + 1
            behind = WalTailer(path, from_lsn=0)
            log.truncate_through(1)  # drops LSN 1; `behind` never saw it
            log.append("delete", "c")
            with pytest.raises(WalTruncatedError):
                behind.poll()
            # The up-to-date tailer keeps following the replaced file.
            assert [record.lsn for record in tailer.poll()] == [3]

    def test_file_shrinking_below_offset_resyncs(self, tmp_path):
        path = tmp_path / "wal.log"
        _build_log(path, count=3)
        tailer = WalTailer(path)
        assert len(tailer.poll()) == 3
        # Bytes vanish *behind* the tailer (post-fsync loss: outside the
        # crash contract, but the tailer must still never double-yield).
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 10])
        recovered, valid_bytes, clean = read_wal(path)
        assert not clean and len(recovered) == 2
        # The tailer resyncs from the top and does not re-yield old records.
        assert tailer.poll() == []
        with WriteAheadLog(path) as log:
            log.append("delete", "reused-lsn")  # resumes at the trimmed tail
            log.append("delete", "fresh")
        # LSNs at or below the cursor were already handed out under their
        # original content and are skipped; only genuinely new LSNs flow.
        polled = tailer.poll()
        assert [record.lsn for record in polled] == [4]
        assert polled[0].image_id == "fresh"

    def test_same_size_replacement_on_a_recycled_inode_resyncs(self, tmp_path):
        # Two back-to-back truncations can land the replacement file on the
        # tailer's remembered inode at exactly its remembered offset (the
        # frames are the same length).  The in-place rewrite below simulates
        # that ABA case deterministically: same inode, same size, different
        # final record -- only the frame fingerprint can tell them apart.
        path = tmp_path / "wal.log"
        with WriteAheadLog(path, fsync=False) as log:
            log.append("delete", "img-1")
        tailer = WalTailer(path)
        assert [record.lsn for record in tailer.poll()] == [1]
        # A log holding only LSN 2 -- byte-for-byte the same length.
        with WriteAheadLog(tmp_path / "other.log", fsync=False) as other:
            other.append("delete", "img-1")  # placeholder for LSN 1
            other.append("delete", "img-2")
            other.truncate_through(1)
        replacement = (tmp_path / "other.log").read_bytes()
        assert len(replacement) == path.stat().st_size
        with open(path, "r+b") as handle:  # in-place: inode and size keep
            handle.write(replacement)
        polled = tailer.poll()
        assert [record.lsn for record in polled] == [2]
        assert polled[0].image_id == "img-2"

    def test_not_a_log_surfaces_storage_error(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"PK\x03\x04 definitely a zip file")
        with pytest.raises(StorageError, match="wal.log"):
            WalTailer(path).poll()
