"""Round-trip, corruption and incremental-save tests for the storage backends.

The matrix at the heart of this module is the PR's acceptance contract: the
same database saved through every backend must reload to identical BE-strings
and identical search rankings, v1 JSON files written before the backend layer
existed must still load, and every corruption mode must surface as a
:class:`~repro.index.storage.StorageError` naming the offending path.
"""

import json
import sqlite3

import pytest

from repro.index.backends import (
    DEFAULT_SHARD_COUNT,
    MANIFEST_NAME,
    DurableShardedStore,
    JsonBackend,
    ShardedBackend,
    SqliteBackend,
    describe_database,
    get_backend,
    infer_backend,
    load_database_from,
    save_database_to,
    shard_index_for,
)
from repro.index.database import ImageDatabase
from repro.index.storage import StorageError, save_database
from repro.retrieval.system import RetrievalSystem

BACKEND_TARGETS = [
    ("json", "db.json"),
    ("sqlite", "db.sqlite"),
    ("sharded", "db.shards"),
]


@pytest.fixture
def populated_database(scene_collection):
    database = ImageDatabase(name="backend-db")
    database.add_pictures(scene_collection)
    return database


def _rankings(system, queries):
    return [
        [result.describe() for result in system.query(query).limit(None).execute()]
        for query in queries
    ]


# ----------------------------------------------------------------------
# Round-trip equivalence matrix
# ----------------------------------------------------------------------
class TestRoundTripMatrix:
    @pytest.mark.parametrize("backend_name,file_name", BACKEND_TARGETS)
    def test_identical_bestrings(
        self, populated_database, tmp_path, backend_name, file_name
    ):
        path = save_database_to(populated_database, tmp_path / file_name, backend_name)
        restored = load_database_from(path)
        assert restored.name == populated_database.name
        assert restored.image_ids == populated_database.image_ids
        for image_id in populated_database.image_ids:
            assert restored.get(image_id).bestring == populated_database.get(image_id).bestring
            assert restored.get(image_id).picture == populated_database.get(image_id).picture

    @pytest.mark.parametrize("backend_name,file_name", BACKEND_TARGETS)
    def test_identical_search_rankings(
        self, scene_collection, tmp_path, backend_name, file_name
    ):
        system = RetrievalSystem.from_pictures(scene_collection)
        expected = _rankings(system, scene_collection)
        path = system.save(tmp_path / file_name, backend=backend_name)
        reloaded = RetrievalSystem.from_file(path)
        assert _rankings(reloaded, scene_collection) == expected

    def test_explicit_backend_on_load(self, populated_database, tmp_path):
        path = save_database_to(populated_database, tmp_path / "db.sqlite", "sqlite")
        restored = load_database_from(path, backend="sqlite")
        assert restored.image_ids == populated_database.image_ids

    def test_v1_json_files_still_load(self, populated_database, tmp_path):
        # Written through the pre-backend v1 API, loaded through every new door.
        path = save_database(populated_database, tmp_path / "legacy.json")
        assert load_database_from(path).image_ids == populated_database.image_ids
        assert JsonBackend().load(path).image_ids == populated_database.image_ids
        assert RetrievalSystem.from_file(path).image_ids == populated_database.image_ids

    def test_json_backend_is_byte_compatible_with_v1(self, populated_database, tmp_path):
        legacy = save_database(populated_database, tmp_path / "legacy.json")
        modern = save_database_to(populated_database, tmp_path / "modern.json", "json")
        assert legacy.read_bytes() == modern.read_bytes()

    def test_cross_backend_conversion_chain(self, populated_database, tmp_path):
        json_path = save_database_to(populated_database, tmp_path / "a.json", "json")
        sqlite_path = save_database_to(
            load_database_from(json_path), tmp_path / "b.sqlite", "sqlite"
        )
        sharded_path = save_database_to(
            load_database_from(sqlite_path), tmp_path / "c.shards", "sharded"
        )
        final = load_database_from(sharded_path)
        assert final.image_ids == populated_database.image_ids
        for image_id in final.image_ids:
            assert final.get(image_id).bestring == populated_database.get(image_id).bestring


# ----------------------------------------------------------------------
# Backend inference
# ----------------------------------------------------------------------
class TestInference:
    def test_fresh_paths_go_by_suffix(self, tmp_path):
        assert infer_backend(tmp_path / "x.json").name == "json"
        assert infer_backend(tmp_path / "x.sqlite").name == "sqlite"
        assert infer_backend(tmp_path / "x.db").name == "sqlite"
        assert infer_backend(tmp_path / "x.shards").name == "sharded"
        assert infer_backend(tmp_path / "bare-directory").name == "sharded"
        assert infer_backend(tmp_path / "x.whatever").name == "json"

    def test_existing_files_go_by_content(self, populated_database, tmp_path):
        # Deliberately misleading suffixes: content sniffing must win.
        sqlite_path = save_database_to(populated_database, tmp_path / "lies.json", "sqlite")
        assert infer_backend(sqlite_path).name == "sqlite"
        json_path = save_database_to(populated_database, tmp_path / "lies.sqlite", "json")
        assert infer_backend(json_path).name == "json"
        sharded_path = save_database_to(populated_database, tmp_path / "dir", "sharded")
        assert infer_backend(sharded_path).name == "sharded"

    def test_unknown_backend_name(self, tmp_path):
        with pytest.raises(ValueError, match="unknown storage backend"):
            get_backend("parquet", tmp_path / "x")

    def test_shard_count_threads_through(self, populated_database, tmp_path):
        path = save_database_to(
            populated_database, tmp_path / "db.shards", "sharded", shard_count=3
        )
        assert describe_database(path)["shard_count"] == 3
        assert len(list(path.glob("shard-*.bin"))) == 3


# ----------------------------------------------------------------------
# Corruption handling
# ----------------------------------------------------------------------
class TestCorruption:
    def test_missing_shard_file(self, populated_database, tmp_path):
        path = save_database_to(populated_database, tmp_path / "db.shards", "sharded")
        victim = sorted(path.glob("shard-*.bin"))[0]
        victim.unlink()
        with pytest.raises(StorageError, match="missing shard file"):
            load_database_from(path)

    def test_truncated_shard_file(self, populated_database, tmp_path):
        path = save_database_to(populated_database, tmp_path / "db.shards", "sharded")
        victim = max(path.glob("shard-*.bin"), key=lambda f: f.stat().st_size)
        victim.write_bytes(victim.read_bytes()[:-10])
        with pytest.raises(StorageError, match="truncated|corrupt"):
            load_database_from(path)

    def test_bad_manifest_schema_version(self, populated_database, tmp_path):
        path = save_database_to(populated_database, tmp_path / "db.shards", "sharded")
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        manifest["schema_version"] = 99
        (path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(StorageError, match="schema version"):
            load_database_from(path)

    def test_directory_without_manifest(self, tmp_path):
        target = tmp_path / "not-a-db"
        target.mkdir()
        with pytest.raises(StorageError, match="manifest"):
            load_database_from(target)

    def test_truncated_sqlite_file(self, populated_database, tmp_path):
        path = save_database_to(populated_database, tmp_path / "db.sqlite", "sqlite")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(StorageError, match=str(path)):
            load_database_from(path, backend="sqlite")

    def test_bad_sqlite_schema_version(self, populated_database, tmp_path):
        path = save_database_to(populated_database, tmp_path / "db.sqlite", "sqlite")
        with sqlite3.connect(str(path)) as connection:
            connection.execute("UPDATE meta SET value = '42' WHERE key = 'schema_version'")
        with pytest.raises(StorageError, match="schema version"):
            load_database_from(path)

    def test_sqlite_row_with_invalid_json(self, populated_database, tmp_path):
        path = save_database_to(populated_database, tmp_path / "db.sqlite", "sqlite")
        with sqlite3.connect(str(path)) as connection:
            connection.execute(
                "UPDATE images SET picture = '{broken' WHERE image_id = "
                "(SELECT image_id FROM images ORDER BY image_id LIMIT 1)"
            )
        with pytest.raises(StorageError, match="invalid JSON"):
            load_database_from(path)

    def test_tampered_bestring_detected_in_shard(self, populated_database, tmp_path):
        # Rewrite one shard with a mismatched BE-string: validation must fire.
        path = save_database_to(populated_database, tmp_path / "db.shards", "sharded")
        database = load_database_from(path)
        image_id = database.image_ids[0]
        record = database.get(image_id)
        other = next(
            database.get(i) for i in database.image_ids if i != image_id
        )
        record.bestring = other.bestring
        database.mark_dirty(image_id)
        save_database_to(database, path, "sharded", incremental=True)
        with pytest.raises(StorageError, match="does not match"):
            load_database_from(path)

    def test_truncated_json_wrapped_with_path(self, populated_database, tmp_path):
        path = save_database_to(populated_database, tmp_path / "db.json", "json")
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(StorageError, match=str(path)):
            RetrievalSystem.from_file(path)

    def test_binary_garbage_json_wrapped_with_path(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_bytes(b"\xff\xfe\x00garbage\x00")
        with pytest.raises(StorageError, match=str(path)):
            RetrievalSystem.from_file(path)


# ----------------------------------------------------------------------
# Dirty tracking and incremental saves
# ----------------------------------------------------------------------
class TestDirtyTracking:
    def test_mutations_mark_dirty(self, office, traffic):
        from repro.geometry.rectangle import Rectangle

        database = ImageDatabase()
        database.add_picture(office)
        database.add_picture(traffic)
        assert database.dirty_ids == {office.name, traffic.name}
        database.clear_dirty()
        database.add_object(office.name, "mug", Rectangle(1, 1, 3, 3))
        assert database.dirty_ids == {office.name}
        database.remove_picture(traffic.name)
        assert database.dirty_ids == {office.name, traffic.name}

    def test_save_and_load_clear_dirty(self, populated_database, tmp_path):
        assert populated_database.dirty_ids
        path = save_database_to(populated_database, tmp_path / "db.shards", "sharded")
        assert populated_database.dirty_ids == frozenset()
        assert load_database_from(path).dirty_ids == frozenset()

    def test_from_file_leaves_system_clean(self, scene_collection, tmp_path):
        system = RetrievalSystem.from_pictures(scene_collection)
        path = system.save(tmp_path / "db.sqlite", backend="sqlite")
        reloaded = RetrievalSystem.from_file(path)
        assert reloaded._engine.database.dirty_ids == frozenset()


class TestIncrementalSharded:
    def test_only_dirty_shards_rewritten(self, populated_database, tmp_path, office):
        path = save_database_to(
            populated_database, tmp_path / "db.shards", "sharded", shard_count=8
        )
        before = {f.name: f.read_bytes() for f in path.glob("shard-*.bin")}
        renamed = office.renamed("fresh-office")
        populated_database.add_picture(renamed)
        save_database_to(populated_database, path, "sharded", incremental=True)
        after = {f.name: f.read_bytes() for f in path.glob("shard-*.bin")}
        expected_shard = f"shard-{shard_index_for('fresh-office', 8):04d}.bin"
        changed = {name for name in before if before[name] != after[name]}
        assert changed == {expected_shard}
        restored = load_database_from(path)
        assert restored.image_ids == populated_database.image_ids

    def test_incremental_removal(self, populated_database, tmp_path):
        path = save_database_to(populated_database, tmp_path / "db.shards", "sharded")
        victim = populated_database.image_ids[0]
        populated_database.remove_picture(victim)
        save_database_to(populated_database, path, "sharded", incremental=True)
        restored = load_database_from(path)
        assert victim not in restored
        assert restored.image_ids == populated_database.image_ids

    def test_incremental_object_edit(self, populated_database, tmp_path):
        from repro.geometry.rectangle import Rectangle

        path = save_database_to(populated_database, tmp_path / "db.shards", "sharded")
        target = populated_database.image_ids[0]
        populated_database.add_object(target, "added-box", Rectangle(0, 0, 2, 2))
        save_database_to(populated_database, path, "sharded", incremental=True)
        restored = load_database_from(path)
        assert restored.get(target).bestring == populated_database.get(target).bestring

    def test_incremental_against_fresh_path_falls_back_to_full(
        self, populated_database, tmp_path
    ):
        path = save_database_to(
            populated_database, tmp_path / "db.shards", "sharded", incremental=True
        )
        assert load_database_from(path).image_ids == populated_database.image_ids

    def test_incremental_against_diverged_target_falls_back_to_full(
        self, populated_database, tmp_path, office
    ):
        # The target holds a different id set than the database minus its
        # dirty ids, so an incremental save would diverge: must full-save.
        path = save_database_to(populated_database, tmp_path / "db.shards", "sharded")
        other = ImageDatabase(name="other")
        other.add_picture(office.renamed("lone-office"))
        other.clear_dirty()
        save_database_to(other, path, "sharded", incremental=True)
        restored = load_database_from(path)
        assert restored.image_ids == ["lone-office"]

    def test_matches_full_save_content(self, populated_database, tmp_path, office):
        incremental_path = save_database_to(
            populated_database, tmp_path / "incremental.shards", "sharded"
        )
        populated_database.add_picture(office.renamed("late-arrival"))
        save_database_to(populated_database, incremental_path, "sharded", incremental=True)
        full_path = save_database_to(populated_database, tmp_path / "full.shards", "sharded")
        incremental_files = {
            f.name: f.read_bytes() for f in incremental_path.iterdir()
        }
        full_files = {f.name: f.read_bytes() for f in full_path.iterdir()}
        assert incremental_files == full_files


class TestIncrementalSqlite:
    def test_upsert_and_delete(self, populated_database, tmp_path, office):
        path = save_database_to(populated_database, tmp_path / "db.sqlite", "sqlite")
        victim = populated_database.image_ids[0]
        populated_database.remove_picture(victim)
        populated_database.add_picture(office.renamed("fresh-office"))
        save_database_to(populated_database, path, "sqlite", incremental=True)
        restored = load_database_from(path)
        assert restored.image_ids == populated_database.image_ids
        assert victim not in restored

    def test_incremental_matches_eager_reload(self, populated_database, tmp_path):
        from repro.geometry.rectangle import Rectangle

        path = save_database_to(populated_database, tmp_path / "db.sqlite", "sqlite")
        target = populated_database.image_ids[-1]
        populated_database.add_object(target, "edit-box", Rectangle(1, 1, 4, 4))
        save_database_to(populated_database, path, "sqlite", incremental=True)
        restored = load_database_from(path)
        assert restored.get(target).bestring == populated_database.get(target).bestring


# ----------------------------------------------------------------------
# Lazy SQLite loading
# ----------------------------------------------------------------------
class TestLazySqlite:
    def test_nothing_loaded_upfront(self, populated_database, tmp_path):
        path = save_database_to(populated_database, tmp_path / "db.sqlite", "sqlite")
        lazy = SqliteBackend().open_lazy(path)
        try:
            assert len(lazy) == len(populated_database)
            assert lazy.image_ids == populated_database.image_ids
            assert lazy.loaded_ids == frozenset()
        finally:
            lazy.close()

    def test_get_materialises_one_record(self, populated_database, tmp_path):
        path = save_database_to(populated_database, tmp_path / "db.sqlite", "sqlite")
        lazy = SqliteBackend().open_lazy(path)
        try:
            target = populated_database.image_ids[2]
            record = lazy.get(target)
            assert record.bestring == populated_database.get(target).bestring
            assert lazy.loaded_ids == {target}
            assert target in lazy and populated_database.image_ids[0] in lazy
        finally:
            lazy.close()

    def test_iteration_materialises_everything(self, populated_database, tmp_path):
        path = save_database_to(populated_database, tmp_path / "db.sqlite", "sqlite")
        lazy = SqliteBackend().open_lazy(path)
        try:
            ids = sorted(record.image_id for record in lazy)
            assert ids == populated_database.image_ids
            assert lazy.loaded_ids == frozenset(populated_database.image_ids)
            assert lazy.statistics() == populated_database.statistics()
        finally:
            lazy.close()

    def test_materialisation_is_not_a_mutation(self, populated_database, tmp_path):
        path = save_database_to(populated_database, tmp_path / "db.sqlite", "sqlite")
        lazy = SqliteBackend().open_lazy(path)
        try:
            lazy.get(populated_database.image_ids[0])
            lazy.materialize_all()
            assert lazy.dirty_ids == frozenset()
        finally:
            lazy.close()

    def test_lazy_detects_corrupt_row(self, populated_database, tmp_path):
        path = save_database_to(populated_database, tmp_path / "db.sqlite", "sqlite")
        target = populated_database.image_ids[0]
        with sqlite3.connect(str(path)) as connection:
            connection.execute(
                "UPDATE images SET picture = '{broken' WHERE image_id = ?", (target,)
            )
        lazy = SqliteBackend().open_lazy(path)
        try:
            other = populated_database.image_ids[1]
            assert lazy.get(other).image_id == other  # clean rows still load
            with pytest.raises(StorageError, match="invalid JSON"):
                lazy.get(target)
        finally:
            lazy.close()


# ----------------------------------------------------------------------
# RetrievalSystem integration
# ----------------------------------------------------------------------
class TestRetrievalSystemBackends:
    @pytest.mark.parametrize("backend_name,file_name", BACKEND_TARGETS)
    def test_save_load_search(self, scene_collection, tmp_path, backend_name, file_name):
        system = RetrievalSystem.from_pictures(scene_collection)
        path = system.save(tmp_path / file_name, backend=backend_name)
        reloaded = RetrievalSystem.from_file(path)
        results = reloaded.query(scene_collection[0]).limit(1).execute()
        assert results and results[0].score == pytest.approx(1.0)

    def test_incremental_save_after_mutation(self, scene_collection, tmp_path, office):
        system = RetrievalSystem.from_pictures(scene_collection)
        path = system.save(tmp_path / "db.shards", backend="sharded")
        system.add_picture(office.renamed("new-arrival"))
        system.save(path, backend="sharded", incremental=True)
        reloaded = RetrievalSystem.from_file(path)
        assert "new-arrival" in reloaded.image_ids


class TestIncompatibleTargets:
    """Wrong-format and wrong-kind targets must raise StorageError, never OSError."""

    def test_sharded_save_onto_existing_file(self, populated_database, tmp_path):
        target = tmp_path / "plain.json"
        target.write_text("{}")
        with pytest.raises(StorageError, match="not a shard directory"):
            save_database_to(populated_database, target, "sharded")

    def test_json_save_onto_directory(self, populated_database, tmp_path):
        target = tmp_path / "a-directory"
        target.mkdir()
        with pytest.raises(StorageError, match="is a directory"):
            save_database_to(populated_database, target, "json")

    def test_sqlite_save_onto_directory(self, populated_database, tmp_path):
        target = tmp_path / "a-directory"
        target.mkdir()
        with pytest.raises(StorageError, match="is a directory"):
            save_database_to(populated_database, target, "sqlite")

    def test_sqlite_describe_on_directory(self, populated_database, tmp_path):
        path = save_database_to(populated_database, tmp_path / "db.shards", "sharded")
        with pytest.raises(StorageError):
            SqliteBackend().describe(path)

    def test_sqlite_load_on_directory(self, populated_database, tmp_path):
        path = save_database_to(populated_database, tmp_path / "db.shards", "sharded")
        with pytest.raises(StorageError):
            load_database_from(path, backend="sqlite")

    def test_json_describe_with_non_list_images(self, tmp_path):
        path = tmp_path / "weird.json"
        path.write_text(json.dumps({"schema_version": 1, "images": 5}))
        with pytest.raises(StorageError, match="bad structure"):
            describe_database(path, backend="json")


class TestLazyMutations:
    def test_remove_picture_updates_image_ids(self, populated_database, tmp_path):
        path = save_database_to(populated_database, tmp_path / "db.sqlite", "sqlite")
        lazy = SqliteBackend().open_lazy(path)
        try:
            victim = populated_database.image_ids[0]
            lazy.remove_picture(victim)
            assert victim not in lazy.image_ids
            assert victim not in lazy
            assert len(lazy) == len(populated_database) - 1
        finally:
            lazy.close()

    def test_statistics_before_any_access_is_consistent(
        self, populated_database, tmp_path
    ):
        path = save_database_to(populated_database, tmp_path / "db.sqlite", "sqlite")
        lazy = SqliteBackend().open_lazy(path)
        try:
            assert lazy.statistics() == populated_database.statistics()
        finally:
            lazy.close()


# ----------------------------------------------------------------------
# Shortlist-signature persistence (warm starts skip recomputation)
# ----------------------------------------------------------------------
class TestSignaturePersistence:
    @pytest.mark.parametrize("backend_name,file_name", BACKEND_TARGETS)
    def test_signatures_round_trip_through_every_backend(
        self, populated_database, tmp_path, backend_name, file_name
    ):
        from repro.index.shortlist import signature_for

        expected = {
            record.image_id: signature_for(record) for record in populated_database
        }
        path = save_database_to(populated_database, tmp_path / file_name, backend_name)
        restored = load_database_from(path)
        for record in restored:
            assert record.signature is not None, record.image_id
            assert record.signature == expected[record.image_id]

    @pytest.mark.parametrize("backend_name,file_name", BACKEND_TARGETS)
    def test_describe_reports_signature_presence(
        self, populated_database, tmp_path, backend_name, file_name
    ):
        path = save_database_to(populated_database, tmp_path / file_name, backend_name)
        assert describe_database(path)["signatures"] is True
        lean = save_database_to(
            populated_database,
            tmp_path / f"lean-{file_name}",
            backend_name,
            persist_signatures=False,
        )
        assert describe_database(lean)["signatures"] is False
        # Lean databases still load; signatures simply rebuild lazily.
        reloaded = load_database_from(lean)
        assert all(record.signature is None for record in reloaded)

    def test_warm_start_reuses_persisted_signatures(
        self, populated_database, tmp_path, monkeypatch
    ):
        from repro.index import shortlist

        path = save_database_to(populated_database, tmp_path / "warm.json", "json")

        def _explode(*args, **kwargs):
            raise AssertionError("warm start recomputed a persisted signature")

        monkeypatch.setattr(shortlist.ImageSignature, "from_bestring", _explode)
        system = RetrievalSystem.from_file(path)
        results = system.query(populated_database.get("office-000").picture).execute()
        assert results and results[0].image_id == "office-000"

    def test_corrupt_signature_payload_is_dropped_not_fatal(
        self, populated_database, tmp_path
    ):
        path = save_database_to(populated_database, tmp_path / "db.json", "json")
        payload = json.loads(path.read_text())
        payload["images"][0]["signature"] = {"version": 1, "garbage": True}
        payload["images"][1]["signature"] = "not-even-a-dict"
        path.write_text(json.dumps(payload))
        restored = load_database_from(path)
        first_two = [entry["image_id"] for entry in payload["images"][:2]]
        for image_id in first_two:
            assert restored.get(image_id).signature is None
        # Everything still queries correctly via lazy recomputation.
        system = RetrievalSystem.from_file(path)
        office = populated_database.get("office-000").picture
        assert system.query(office).min_score(0.5).execute()

    def test_pre_signature_sqlite_schema_still_loads_and_upgrades(
        self, populated_database, tmp_path
    ):
        # Hand-build an old-schema file (no signature column).
        path = tmp_path / "legacy.sqlite"
        connection = sqlite3.connect(str(path))
        with connection:
            connection.execute("CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT)")
            connection.execute(
                "CREATE TABLE images (image_id TEXT PRIMARY KEY, "
                "picture TEXT NOT NULL, bestring TEXT NOT NULL)"
            )
            connection.execute(
                "INSERT INTO meta (key, value) VALUES ('schema_version', '1')"
            )
            from repro.index.storage import image_record_to_json

            for record in populated_database:
                entry = image_record_to_json(record, include_signature=False)
                connection.execute(
                    "INSERT INTO images (image_id, picture, bestring) VALUES (?, ?, ?)",
                    (
                        record.image_id,
                        json.dumps(entry["picture"], sort_keys=True),
                        json.dumps(entry["bestring"], sort_keys=True),
                    ),
                )
        connection.close()

        restored = load_database_from(path, backend="sqlite")
        assert restored.image_ids == populated_database.image_ids
        assert all(record.signature is None for record in restored)

        # An incremental save against the old schema falls back to a full
        # rewrite that upgrades the file in place.
        restored.mark_dirty(restored.image_ids[0])
        SqliteBackend().save(restored, path, incremental=True)
        assert describe_database(path)["signatures"] is True
        upgraded = load_database_from(path, backend="sqlite")
        assert all(record.signature is not None for record in upgraded)

    def test_lazy_sqlite_materialises_persisted_signatures(
        self, populated_database, tmp_path
    ):
        backend = SqliteBackend()
        path = save_database_to(populated_database, tmp_path / "lazy.sqlite", backend)
        lazy = backend.open_lazy(path)
        try:
            record = lazy.get(populated_database.image_ids[0])
            assert record.signature is not None
        finally:
            lazy.close()

    def test_incremental_saves_refresh_dirty_signatures(
        self, populated_database, tmp_path
    ):
        from repro.geometry.rectangle import Rectangle

        path = save_database_to(populated_database, tmp_path / "incr.sqlite", "sqlite")
        image_id = populated_database.image_ids[0]
        populated_database.add_object(image_id, "fresh-box", Rectangle(1, 1, 3, 3))
        save_database_to(populated_database, path, "sqlite", incremental=True)
        restored = load_database_from(path)
        signature = restored.get(image_id).signature
        assert signature is not None
        assert signature.label_counts.get("fresh-box") == 1

    def test_warm_start_preserves_tuned_bitmap_width(
        self, populated_database, tmp_path, monkeypatch
    ):
        # Regression: from_file used to rebuild every signature at the
        # default width, silently undoing `repro convert --bitmap-width`.
        from repro.index import shortlist
        from repro.index.shortlist import ensure_signatures

        ensure_signatures(populated_database, width=64)
        path = save_database_to(populated_database, tmp_path / "tuned.json", "json")

        def _explode(*args, **kwargs):
            raise AssertionError("warm start recomputed a tuned signature")

        monkeypatch.setattr(shortlist.ImageSignature, "from_bestring", _explode)
        system = RetrievalSystem.from_file(path)
        assert system._engine.bitmap_width == 64
        assert all(
            record.signature.width == 64 for record in system._engine.database
        )

    def test_persist_signatures_override_does_not_leak_into_the_instance(
        self, populated_database, tmp_path
    ):
        # Regression: the one-shot override used to mutate the caller's
        # backend, turning signatures off for every later save through it.
        backend = SqliteBackend()
        lean = save_database_to(
            populated_database, tmp_path / "lean.sqlite", backend,
            persist_signatures=False,
        )
        assert describe_database(lean)["signatures"] is False
        assert backend.persist_signatures is True
        full = save_database_to(populated_database, tmp_path / "full.sqlite", backend)
        assert describe_database(full)["signatures"] is True


# ----------------------------------------------------------------------
# Durable backend: WAL-backed sharded directories
# ----------------------------------------------------------------------
class TestDurableBackend:
    def test_durable_round_trip(self, populated_database, tmp_path):
        path = save_database_to(
            populated_database, tmp_path / "db.shards", "sharded", durable=True
        )
        restored = load_database_from(path, durable=True)
        assert restored.image_ids == populated_database.image_ids
        for image_id in restored.image_ids:
            assert restored.get(image_id).bestring == populated_database.get(image_id).bestring

    def test_describe_reports_wal_block(self, populated_database, tmp_path):
        path = save_database_to(
            populated_database, tmp_path / "db.shards", "sharded", durable=True
        )
        wal = describe_database(path)["wal"]
        assert wal["file"] == "wal.log"
        assert wal["snapshot_lsn"] == 0
        assert wal["last_lsn"] == 0
        assert wal["pending_records"] == 0
        assert wal["clean"] is True
        # Plain sharded directories have no wal block at all.
        plain = save_database_to(populated_database, tmp_path / "plain.shards", "sharded")
        assert "wal" not in describe_database(plain)

    def test_pending_log_records_replay_on_load(self, populated_database, tmp_path, office):
        path = save_database_to(
            populated_database, tmp_path / "db.shards", "sharded", durable=True
        )
        victim = populated_database.image_ids[0]
        with DurableShardedStore(populated_database, path) as store:
            populated_database.add_picture(office.renamed("walled-in"))
            store.log_upsert(populated_database.get("walled-in"))
            populated_database.remove_picture(victim)
            store.log_delete(victim)
            assert store.pending_records == 2
        # No compaction happened: the snapshot on disk predates both
        # mutations, so the load must replay them from the log.
        restored = load_database_from(path)
        assert "walled-in" in restored
        assert victim not in restored
        assert restored.image_ids == populated_database.image_ids

    def test_compaction_folds_log_into_snapshot(
        self, populated_database, tmp_path, office
    ):
        path = save_database_to(
            populated_database, tmp_path / "db.shards", "sharded", durable=True
        )
        with DurableShardedStore(populated_database, path) as store:
            populated_database.add_picture(office.renamed("compact-me"))
            store.log_upsert(populated_database.get("compact-me"))
            assert store.pending_records == 1
            store.compact()
            assert store.pending_records == 0
            assert store.compactions == 1
        wal = describe_database(path)["wal"]
        assert wal["pending_records"] == 0
        assert wal["snapshot_lsn"] == wal["last_lsn"] == 1
        assert "compact-me" in load_database_from(path)

    def test_crash_window_untrimmed_log_replays_idempotently(
        self, populated_database, tmp_path, office
    ):
        # Simulate a crash after the manifest swap but before the log
        # truncation: the manifest's snapshot_lsn already covers the
        # records still sitting in the log, so replay must skip them.
        path = save_database_to(
            populated_database, tmp_path / "db.shards", "sharded", durable=True
        )
        with DurableShardedStore(populated_database, path) as store:
            populated_database.add_picture(office.renamed("twice-applied"))
            store.log_upsert(populated_database.get("twice-applied"))
            store.compact()
        log_bytes = (path / "wal.log").read_bytes()
        clean = load_database_from(path)

        # Rebuild the pre-truncation log next to the post-compaction manifest.
        fresh = save_database_to(
            populated_database, tmp_path / "crashed.shards", "sharded", durable=True
        )
        with DurableShardedStore(populated_database, fresh) as store:
            store.log_upsert(populated_database.get("twice-applied"))
            store.compact()
        (fresh / "wal.log").write_bytes(log_bytes)
        recovered = load_database_from(fresh)
        assert recovered.image_ids == clean.image_ids
        for image_id in recovered.image_ids:
            assert recovered.get(image_id).bestring == clean.get(image_id).bestring

    def test_crash_window_shards_written_manifest_not_swapped(
        self, populated_database, tmp_path, office
    ):
        # A crash between the shard rewrite and the manifest swap leaves the
        # old manifest pointing at a log that still holds the delta: the
        # next load must replay it and see the mutation exactly once.
        path = save_database_to(
            populated_database, tmp_path / "db.shards", "sharded", durable=True
        )
        manifest_bytes = (path / MANIFEST_NAME).read_bytes()
        with DurableShardedStore(populated_database, path) as store:
            populated_database.add_picture(office.renamed("mid-compaction"))
            store.log_upsert(populated_database.get("mid-compaction"))
            log_bytes = (path / "wal.log").read_bytes()
            store.compact()
        # Roll the manifest and log back to their pre-compaction state; the
        # rewritten shards stay (they are a superset keyed by the manifest).
        (path / MANIFEST_NAME).write_bytes(manifest_bytes)
        (path / "wal.log").write_bytes(log_bytes)
        recovered = load_database_from(path)
        assert "mid-compaction" in recovered
        assert recovered.image_ids == populated_database.image_ids

    def test_durable_save_requires_sharded_backend(self, populated_database, tmp_path):
        with pytest.raises(ValueError, match="sharded"):
            save_database_to(
                populated_database, tmp_path / "db.json", "json", durable=True
            )

    def test_durable_load_requires_sharded_database(self, populated_database, tmp_path):
        path = save_database_to(populated_database, tmp_path / "db.sqlite", "sqlite")
        with pytest.raises(ValueError, match="sharded"):
            load_database_from(path, durable=True)

    def test_torn_log_tail_recovers_to_acked_prefix(
        self, populated_database, tmp_path, office
    ):
        path = save_database_to(
            populated_database, tmp_path / "db.shards", "sharded", durable=True
        )
        with DurableShardedStore(populated_database, path) as store:
            populated_database.add_picture(office.renamed("survives"))
            store.log_upsert(populated_database.get("survives"))
            populated_database.add_picture(office.renamed("torn-away"))
            store.log_upsert(populated_database.get("torn-away"))
        log_path = path / "wal.log"
        log_path.write_bytes(log_path.read_bytes()[:-7])  # tear the last record
        recovered = load_database_from(path)
        assert "survives" in recovered
        assert "torn-away" not in recovered

    def test_store_lsns_resume_across_reopen(self, populated_database, tmp_path, office):
        path = save_database_to(
            populated_database, tmp_path / "db.shards", "sharded", durable=True
        )
        with DurableShardedStore(populated_database, path) as store:
            populated_database.add_picture(office.renamed("first"))
            assert store.log_upsert(populated_database.get("first")) == 1
            store.compact()
        reloaded = load_database_from(path, durable=True)
        with DurableShardedStore(reloaded, path) as store:
            assert store.last_lsn == 1
            reloaded.add_picture(office.renamed("second"))
            assert store.log_upsert(reloaded.get("second")) == 2
