"""Unit tests for the query engine."""

import pytest

from repro.core.similarity import SimilarityPolicy, Normalization
from repro.core.transforms import Transformation
from repro.index.database import ImageDatabase
from repro.index.query import Query, QueryEngine


@pytest.fixture
def engine(scene_collection):
    database = ImageDatabase()
    database.add_pictures(scene_collection)
    return QueryEngine.build(database)


class TestBuildAndMaintain:
    def test_build_indexes_existing_images(self, engine, scene_collection):
        assert len(engine.database) == len(scene_collection)
        assert len(engine.inverted_index) == len(scene_collection)
        assert len(engine.signature_filter) == len(scene_collection)

    def test_add_and_remove_picture(self, engine, office):
        new_id = engine.add_picture(office.renamed("office-extra"))
        assert new_id == "office-extra"
        assert "office-extra" in engine.database
        engine.remove_picture("office-extra")
        assert "office-extra" not in engine.database
        assert "office-extra" not in engine.inverted_index.indexed_images


class TestExecution:
    def test_exact_query_ranks_identical_image_first(self, engine, office):
        results = engine.execute(Query.exact(office))
        assert results[0].image_id == office.name
        assert results[0].score == pytest.approx(1.0)

    def test_search_convenience_wrapper(self, engine, office):
        results = engine.search(office, limit=3)
        assert len(results) <= 3
        assert results[0].image_id == office.name

    def test_limit_and_minimum_score(self, engine, office):
        query = Query(picture=office, limit=2, minimum_score=0.1)
        results = engine.execute(query)
        assert len(results) <= 2
        assert all(result.score >= 0.1 for result in results)

    def test_filters_restrict_candidates_to_shared_labels(self, engine, office):
        filtered = engine.execute(Query.exact(office))
        unfiltered = engine.execute(
            Query(picture=office, use_filters=False)
        )
        filtered_ids = {result.image_id for result in filtered}
        unfiltered_ids = {result.image_id for result in unfiltered}
        # Office queries can never shortlist landscape/traffic images (no
        # shared labels), but the unfiltered run scores them anyway.
        assert filtered_ids <= unfiltered_ids
        assert any(image_id.startswith("landscape") for image_id in unfiltered_ids)
        assert not any(image_id.startswith("landscape") for image_id in filtered_ids)

    def test_invariant_query_finds_rotated_image(self, engine, office):
        rotated = office.rotate90().renamed("office-rotated")
        engine.add_picture(rotated)
        exact = engine.execute(Query.exact(office, use_filters=False))
        invariant = engine.execute(Query.invariant(office, use_filters=False))
        exact_score = {r.image_id: r.score for r in exact}["office-rotated"]
        invariant_entry = next(r for r in invariant if r.image_id == "office-rotated")
        assert invariant_entry.score == pytest.approx(1.0)
        assert invariant_entry.score > exact_score
        assert invariant_entry.similarity.transformation is Transformation.ROTATE_90

    def test_policy_is_respected(self, engine, office):
        policy = SimilarityPolicy(normalization=Normalization.NONE)
        results = engine.execute(Query(picture=office, policy=policy))
        assert results[0].score > 1.0  # raw symbol counts, not normalised

    def test_query_with_unknown_labels_returns_empty_with_filters(self, engine):
        from repro.geometry.rectangle import Rectangle
        from repro.iconic.picture import SymbolicPicture

        alien = SymbolicPicture.build(
            width=10, height=10, objects=[("alien", Rectangle(1, 1, 3, 3))], name="alien"
        )
        assert engine.execute(Query.exact(alien)) == []
        assert len(engine.execute(Query(picture=alien, use_filters=False))) > 0


class TestObjectEditInvalidation:
    """Object-level edits must atomically refresh every index and the cache.

    Regression suite for the concurrent-service work: ``add_object`` /
    ``remove_object`` rewrite the stored record under the engine's write
    lock, and a previously cached query must re-score (not replay stale
    memoised results) the moment the record changes.
    """

    def _traced(self, engine, query):
        ranked, trace = engine.execute_traced(query)
        return {r.image_id: r.score for r in ranked}, trace

    def test_cached_query_rescores_after_remove_object(self, engine, office):
        query = Query.exact(office)
        before, _ = self._traced(engine, query)
        _, warm = self._traced(engine, query)
        assert warm.cache_misses == 0  # fully served from the score cache

        icon = office.icons_with_label("phone")[0]
        engine.remove_object(office.name, icon.identifier)

        after, trace = self._traced(engine, query)
        # Exactly the edited image fell out of the cache and was re-scored
        # against the new record: the query's phone no longer matches.
        assert trace.candidates[office.name].cache_hit is False
        assert trace.cache_misses == 1
        assert after[office.name] < before[office.name]

    def test_cached_query_rescores_after_add_object(self, engine, office):
        """Adding the icon back re-scores again and restores the ranking."""
        query = Query.exact(office)
        before, _ = self._traced(engine, query)

        icon = office.icons_with_label("phone")[0]
        engine.remove_object(office.name, icon.identifier)
        removed, _ = self._traced(engine, query)
        assert removed[office.name] < before[office.name]

        engine.add_object(office.name, "phone", icon.mbr)
        after, trace = self._traced(engine, query)
        assert trace.candidates[office.name].cache_hit is False
        assert trace.cache_misses == 1
        assert after[office.name] == pytest.approx(before[office.name])

    def test_add_object_updates_inverted_index_postings(self, engine, office):
        from repro.geometry.rectangle import Rectangle
        from repro.iconic.picture import SymbolicPicture

        probe = SymbolicPicture.build(
            width=10, height=10,
            objects=[("sundial", Rectangle(1, 1, 3, 3))],
            name="sundial-probe",
        )
        assert engine.execute(Query.exact(probe)) == []

        engine.add_object(office.name, "sundial", Rectangle(6.0, 1.0, 7.0, 2.0))
        hits = engine.execute(Query.exact(probe))
        assert [r.image_id for r in hits] == [office.name]
        assert engine.inverted_index.images_with_label("sundial") == {office.name}

        engine.remove_object(office.name, "sundial")
        assert engine.execute(Query.exact(probe)) == []
        assert engine.inverted_index.images_with_label("sundial") == set()

    def test_edits_are_atomic_under_the_installed_write_lock(self, engine, office):
        """With a real rwlock installed, the mutation happens under the
        exclusive grant (no reader can observe a half-refreshed engine)."""
        from repro.geometry.rectangle import Rectangle
        from repro.service.rwlock import ReadWriteLock

        engine.lock = ReadWriteLock()
        engine.add_object(office.name, "phone", Rectangle(0.5, 0.5, 1.5, 1.5))
        stats = engine.lock.statistics()
        assert stats["write_acquisitions"] == 1
        results = engine.execute(Query.exact(office))
        assert results[0].image_id == office.name
        assert engine.lock.statistics()["read_acquisitions"] >= 1


class TestTransformationCanonicalization:
    """The same transformation *set* behaves identically in any order."""

    SHUFFLED = (
        Transformation.REFLECT_Y,
        Transformation.ROTATE_270,
        Transformation.IDENTITY,
        Transformation.ROTATE_90,
        Transformation.REFLECT_X,
        Transformation.ROTATE_180,
    )

    def test_query_canonicalizes_transformations(self, office):
        query = Query(picture=office, transformations=self.SHUFFLED)
        assert query.transformations == tuple(Transformation)
        deduplicated = Query(
            picture=office,
            transformations=(Transformation.IDENTITY, Transformation.IDENTITY),
        )
        assert deduplicated.transformations == (Transformation.IDENTITY,)

    def test_query_score_key_is_order_insensitive(self, office):
        from repro.core.construct import encode_picture
        from repro.core.similarity import DEFAULT_POLICY
        from repro.index.cache import query_score_key

        bestring = encode_picture(office)
        assert query_score_key(
            bestring, DEFAULT_POLICY, tuple(Transformation)
        ) == query_score_key(bestring, DEFAULT_POLICY, self.SHUFFLED)

    def test_reordered_set_hits_the_cache(self, engine, office):
        # Regression: the same transformation set in a different order used
        # to miss the cache and re-run the full dynamic program per image.
        engine.score_cache.reset_statistics()
        first = engine.execute(
            Query(picture=office, transformations=tuple(Transformation))
        )
        warm = engine.score_cache.statistics
        assert warm.misses > 0
        second = engine.execute(Query(picture=office, transformations=self.SHUFFLED))
        after = engine.score_cache.statistics
        assert after.misses == warm.misses  # hit-rate parity: no re-scoring
        assert after.hits == warm.hits + warm.misses
        assert [(r.rank, r.image_id, r.score) for r in first] == [
            (r.rank, r.image_id, r.score) for r in second
        ]
        assert [r.similarity.transformation for r in first] == [
            r.similarity.transformation for r in second
        ]
