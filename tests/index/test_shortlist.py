"""The two-stage signature shortlist: bounds, equivalence, persistence hooks.

The load-bearing guarantee is *soundness*: the shortlist's score upper bound
must never fall below the true modified-LCS score, because candidates are
rejected whenever the bound is below the query's ``min_score``.  A single
unsound bound would silently drop a correct result, so the suite checks the
bound against exhaustive real evaluations over randomized corpora, every
policy axis, and every transformation set — then locks down end-to-end
ranking equivalence with the filter-disabled scan.
"""

import pytest

from repro.core.construct import encode_picture
from repro.core.similarity import (
    Combination,
    Normalization,
    SimilarityPolicy,
    invariant_similarity,
    similarity,
)
from repro.core.transforms import Transformation
from repro.datasets.synthetic import SceneParameters, random_pictures
from repro.geometry.rectangle import Rectangle
from repro.iconic.picture import SymbolicPicture
from repro.index.database import ImageDatabase
from repro.index.query import Query, QueryEngine
from repro.index.shortlist import (
    DEFAULT_BITMAP_WIDTH,
    ImageSignature,
    QuerySignature,
    axis_pair_codes,
    ensure_signatures,
    label_bit,
    label_bitmap,
    pair_conflicts,
    signature_for,
)
from repro.index.spec import STAGE_BITMAP_PRUNED, STAGE_RELATION_PRUNED

_PARAMETERS = SceneParameters(
    object_count=6,
    alignment_probability=0.4,
    labels=tuple(f"label{index:02d}" for index in range(12)),
    label_choice="random",
)

_POLICIES = [
    SimilarityPolicy(),
    SimilarityPolicy(normalization=Normalization.DATABASE),
    SimilarityPolicy(normalization=Normalization.DICE, combination=Combination.MIN),
    SimilarityPolicy(combination=Combination.PRODUCT),
    SimilarityPolicy(count_boundaries_only=True),
    SimilarityPolicy(normalization=Normalization.NONE, combination=Combination.MIN),
]


def _signature(picture):
    return ImageSignature.from_bestring(encode_picture(picture), picture.labels)


class TestBitmapPrimitives:
    def test_label_bit_is_stable_and_in_range(self):
        assert 0 <= label_bit("car") < DEFAULT_BITMAP_WIDTH
        assert label_bit("car") == label_bit("car")
        assert label_bit("car", width=8) < 8

    def test_bitmap_sets_one_bit_per_distinct_label(self):
        bitmap = label_bitmap(["car", "car", "tree"])
        assert bin(bitmap).count("1") <= 2
        assert bitmap & (1 << label_bit("car"))
        assert bitmap & (1 << label_bit("tree"))

    def test_overlap_upper_bound_never_undercounts(self):
        pictures = random_pictures(30, seed=5, parameters=_PARAMETERS)
        query_signatures = [
            QuerySignature(encode_picture(p), p.labels, width=16) for p in pictures[:10]
        ]
        candidates = [
            ImageSignature.from_bestring(encode_picture(p), p.labels, width=16)
            for p in pictures
        ]
        for query_signature in query_signatures:
            for candidate in candidates:
                assert query_signature.overlap_upper_bound(
                    candidate
                ) >= query_signature.exact_overlap(candidate)

    def test_width_mismatch_falls_back_to_total(self):
        picture = random_pictures(1, seed=1, parameters=_PARAMETERS)[0]
        query_signature = QuerySignature(encode_picture(picture), picture.labels, width=16)
        other = ImageSignature.from_bestring(
            encode_picture(picture), picture.labels, width=32
        )
        assert (
            query_signature.overlap_upper_bound(other) == query_signature.total_labels
        )


class TestPairCodes:
    def test_codes_capture_relative_order(self):
        left_of = SymbolicPicture.build(
            10, 10, [("a", Rectangle(1, 1, 3, 3)), ("b", Rectangle(5, 1, 7, 3))]
        )
        right_of = SymbolicPicture.build(
            10, 10, [("a", Rectangle(5, 1, 7, 3)), ("b", Rectangle(1, 1, 3, 3))]
        )
        codes_left = axis_pair_codes(encode_picture(left_of).x)
        codes_right = axis_pair_codes(encode_picture(right_of).x)
        assert codes_left[("a", "b")] != codes_right[("a", "b")]
        # Same y arrangement -> same y code.
        assert axis_pair_codes(encode_picture(left_of).y) == axis_pair_codes(
            encode_picture(right_of).y
        )

    def test_conflict_matching_is_disjoint(self):
        query_pairs = {("a", "b"): 1, ("a", "c"): 2, ("b", "c"): 3}
        candidate_pairs = {("a", "b"): 9, ("a", "c"): 9, ("b", "c"): 9}
        # All three pairs conflict, but a matching can only pick one disjoint
        # edge out of a triangle.
        assert pair_conflicts(query_pairs, candidate_pairs) == 1

    def test_no_conflicts_when_pairs_agree_or_are_absent(self):
        assert pair_conflicts({("a", "b"): 1}, {("a", "b"): 1}) == 0
        assert pair_conflicts({("a", "b"): 1}, {("a", "c"): 2}) == 0
        assert pair_conflicts({}, {("a", "b"): 1}) == 0


class TestScoreBoundSoundness:
    """bound >= true score, for every policy and transformation set."""

    @pytest.mark.parametrize("policy", _POLICIES, ids=lambda p: p.describe())
    def test_identity_bound_dominates_true_score(self, policy):
        pictures = random_pictures(24, seed=9, parameters=_PARAMETERS)
        for query_picture in pictures[:8]:
            query_bestring = encode_picture(query_picture)
            query_signature = QuerySignature(query_bestring, query_picture.labels)
            for candidate_picture in pictures:
                candidate_bestring = encode_picture(candidate_picture)
                candidate = _signature(candidate_picture)
                true_score = similarity(
                    query_bestring, candidate_bestring, policy
                ).score
                overlap = query_signature.exact_overlap(candidate)
                bound = query_signature.score_upper_bound(
                    candidate, overlap, policy, with_conflicts=True
                )
                assert bound + 1e-9 >= true_score

    @pytest.mark.parametrize("policy", _POLICIES[:3], ids=lambda p: p.describe())
    def test_invariant_bound_dominates_best_transformed_score(self, policy):
        pictures = random_pictures(16, seed=13, parameters=_PARAMETERS)
        transformations = tuple(Transformation)
        for query_picture in pictures[:6]:
            query_bestring = encode_picture(query_picture)
            query_signature = QuerySignature(
                query_bestring, query_picture.labels, transformations
            )
            for candidate_picture in pictures:
                candidate_bestring = encode_picture(candidate_picture)
                candidate = _signature(candidate_picture)
                true_score = invariant_similarity(
                    query_bestring, candidate_bestring, policy, transformations
                ).score
                overlap = query_signature.exact_overlap(candidate)
                bound = query_signature.score_upper_bound(
                    candidate, overlap, policy, with_conflicts=True
                )
                assert bound + 1e-9 >= true_score

    def test_self_match_bound_is_tight(self):
        picture = random_pictures(1, seed=3, parameters=_PARAMETERS)[0]
        bestring = encode_picture(picture)
        query_signature = QuerySignature(bestring, picture.labels)
        candidate = _signature(picture)
        overlap = query_signature.exact_overlap(candidate)
        bound = query_signature.score_upper_bound(
            candidate, overlap, SimilarityPolicy(), with_conflicts=True
        )
        assert bound == pytest.approx(1.0)


class TestEngineEquivalence:
    """Pruned execution ranks byte-identically to the filter-disabled scan."""

    @pytest.fixture(scope="class")
    def engine(self):
        database = ImageDatabase(name="shortlist-equivalence")
        database.add_pictures(random_pictures(80, seed=21, parameters=_PARAMETERS))
        return QueryEngine.build(database)

    @pytest.mark.parametrize("minimum_score", [0.25, 0.5, 0.8])
    @pytest.mark.parametrize("invariant", [False, True])
    def test_rankings_match_full_scan(self, engine, minimum_score, invariant):
        transformations = (
            tuple(Transformation) if invariant else (Transformation.IDENTITY,)
        )
        pictures = random_pictures(8, seed=34, parameters=_PARAMETERS)
        for picture in pictures:
            filtered = engine.execute(
                Query(
                    picture=picture,
                    transformations=transformations,
                    minimum_score=minimum_score,
                    use_cache=False,
                )
            )
            full = engine.execute(
                Query(
                    picture=picture,
                    transformations=transformations,
                    minimum_score=minimum_score,
                    use_filters=False,
                    use_cache=False,
                )
            )
            assert [(r.rank, r.image_id, r.score) for r in filtered] == [
                (r.rank, r.image_id, r.score) for r in full
            ]
            assert [r.similarity.transformation for r in filtered] == [
                r.similarity.transformation for r in full
            ]

    def test_stored_images_always_survive_their_own_query(self, engine):
        # The no-false-negative guarantee in its sharpest form: a stored
        # image queried against itself scores 1.0 and must never be pruned.
        for image_id in engine.database.image_ids[:10]:
            record = engine.database.get(image_id)
            results = engine.execute(
                Query(picture=record.picture, minimum_score=0.99, use_cache=False)
            )
            assert results and results[0].image_id == image_id

    def test_trace_records_pruning_stages(self, engine):
        picture = random_pictures(1, seed=55, parameters=_PARAMETERS)[0]
        _, trace = engine.execute_traced(
            Query(picture=picture, minimum_score=0.6, use_cache=False)
        )
        assert trace.bitmap_pruned + trace.relation_pruned > 0
        rejected_stages = {
            candidate.stage
            for candidate in trace.candidates.values()
            if candidate.stage in (STAGE_BITMAP_PRUNED, STAGE_RELATION_PRUNED)
        }
        assert rejected_stages  # the sample names the rejecting stage

    def test_relation_stage_rejects_rearranged_layout(self):
        # Same labels, mirrored arrangement: stage 1 (labels only) cannot
        # prune it, the relation-pair bound can.
        base = SymbolicPicture.build(
            12,
            12,
            [
                ("a", Rectangle(1, 5, 3, 7)),
                ("b", Rectangle(5, 5, 7, 7)),
                ("c", Rectangle(9, 5, 11, 7)),
            ],
            name="base",
        )
        mirrored = base.reflect_y().renamed("mirrored")
        database = ImageDatabase()
        database.add_picture(base, "base")
        database.add_picture(mirrored, "mirrored")
        engine = QueryEngine.build(database)
        outcome = engine.shortlist(Query(picture=base, minimum_score=0.95))
        assert outcome.candidates == ["base"]
        assert outcome.relation_rejected == 1
        assert outcome.rejections.get("mirrored") == STAGE_RELATION_PRUNED

    def test_counters_accumulate(self, engine):
        engine.shortlist_counters.reset()
        picture = random_pictures(1, seed=77, parameters=_PARAMETERS)[0]
        engine.execute(Query(picture=picture, minimum_score=0.5, use_cache=False))
        statistics = engine.shortlist_counters.statistics
        assert statistics.queries == 1
        assert statistics.candidates == (
            statistics.admitted
            + statistics.bitmap_rejected
            + statistics.relation_rejected
        )

    def test_min_score_zero_admits_every_label_sharer(self, engine):
        picture = random_pictures(1, seed=88, parameters=_PARAMETERS)[0]
        outcome = engine.shortlist(Query(picture=picture))
        assert outcome.bitmap_rejected == 0
        assert outcome.relation_rejected == 0
        assert len(outcome.candidates) == outcome.inverted_candidates


class TestSignatureLifecycle:
    def test_serialization_round_trip(self):
        picture = random_pictures(1, seed=2, parameters=_PARAMETERS)[0]
        signature = _signature(picture)
        restored = ImageSignature.from_dict(signature.to_dict())
        assert restored == signature

    def test_from_dict_rejects_unknown_version(self):
        picture = random_pictures(1, seed=2, parameters=_PARAMETERS)[0]
        payload = _signature(picture).to_dict()
        payload["version"] = 99
        with pytest.raises(ValueError):
            ImageSignature.from_dict(payload)

    def test_object_edits_invalidate_the_cached_signature(self):
        database = ImageDatabase()
        picture = random_pictures(1, seed=6, parameters=_PARAMETERS)[0]
        record = database.add_picture(picture, "edited")
        before = signature_for(record)
        database.add_object("edited", "added-box", Rectangle(0.5, 0.5, 2.0, 2.0))
        assert record.signature is None
        after = signature_for(record)
        assert after.label_counts.get("added-box") == 1
        assert after != before

    def test_engine_edits_keep_shortlist_consistent(self):
        database = ImageDatabase()
        pictures = random_pictures(10, seed=41, parameters=_PARAMETERS)
        database.add_pictures(pictures)
        engine = QueryEngine.build(database)
        image_id = database.image_ids[0]
        engine.add_object(image_id, "fresh-label", Rectangle(1, 1, 4, 4))
        query_picture = database.get(image_id).picture
        results = engine.execute(
            Query(picture=query_picture, minimum_score=0.99, use_cache=False)
        )
        assert results and results[0].image_id == image_id

    def test_ensure_signatures_recomputes_at_requested_width(self):
        database = ImageDatabase()
        database.add_pictures(random_pictures(4, seed=8, parameters=_PARAMETERS))
        computed = ensure_signatures(database, width=32)
        assert computed == 4
        assert all(record.signature.width == 32 for record in database)
        assert ensure_signatures(database, width=32) == 0


class TestThresholdAndWidthConsistency:
    def test_overlap_threshold_rejections_belong_to_the_bitmap_stage(self):
        # Threshold rejections — bitmap-bounded *or* exact — are label-overlap
        # (stage-1) rejections; only the relation-pair score bound is stage 2.
        database = ImageDatabase()
        database.add_pictures(random_pictures(30, seed=61, parameters=_PARAMETERS))
        engine = QueryEngine.build(database, minimum_overlap_ratio=0.75)
        picture = random_pictures(1, seed=62, parameters=_PARAMETERS)[0]
        outcome = engine.shortlist(Query(picture=picture))
        assert outcome.bitmap_rejected > 0
        assert outcome.relation_rejected == 0
        assert all(
            stage == STAGE_BITMAP_PRUNED for stage in outcome.rejections.values()
        )
        # The sampled bound of a threshold rejection is the failing ratio.
        assert all(
            0.0 <= outcome.rejection_bounds[image_id] < 0.75
            for image_id in outcome.rejections
        )
        # Semantics match the legacy filter exactly.
        legacy = engine.signature_filter.filter(
            picture, sorted(set(database.image_ids) - set(outcome.rejections))
        )
        assert set(outcome.candidates) <= set(legacy) | set(outcome.candidates)

    def test_engine_mutations_materialise_signatures_at_engine_width(self):
        database = ImageDatabase()
        database.add_pictures(random_pictures(3, seed=63, parameters=_PARAMETERS))
        ensure_signatures(database, width=64)
        engine = QueryEngine.build(database)  # adopts the persisted width
        assert engine.bitmap_width == 64
        picture = random_pictures(1, seed=64, parameters=_PARAMETERS)[0]
        image_id = engine.add_picture(picture, "added-after-tuning")
        record = engine.database.get(image_id)
        assert record.signature is not None and record.signature.width == 64
        engine.add_object(image_id, "late-box", Rectangle(0.5, 0.5, 2.0, 2.0))
        record = engine.database.get(image_id)
        assert record.signature is not None and record.signature.width == 64
