"""Tests for the batch query subsystem (engine, scheduler, score cache)."""

import pytest

from repro.geometry.rectangle import Rectangle
from repro.iconic.picture import SymbolicPicture
from repro.index.batch import BatchOptions, BatchQueryEngine
from repro.index.cache import ScoreCache, query_score_key
from repro.index.database import ImageDatabase
from repro.index.query import Query, QueryEngine
from repro.retrieval.system import RetrievalSystem


def result_key(results):
    """Everything a ranked result list is judged on, including tie-breaks."""
    return [
        (r.rank, r.image_id, r.score, r.similarity.transformation, r.similarity.common_objects)
        for r in results
    ]


@pytest.fixture
def engine(scene_collection):
    database = ImageDatabase()
    database.add_pictures(scene_collection)
    return QueryEngine.build(database)


@pytest.fixture
def system(scene_collection):
    return RetrievalSystem.from_pictures(scene_collection)


@pytest.fixture
def query_pictures(scene_collection):
    # Duplicates on purpose: the batch engine must deduplicate them.
    return [
        scene_collection[0],
        scene_collection[3],
        scene_collection[0],
        scene_collection[5],
        scene_collection[3],
    ]


class TestEquivalenceWithSerial:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process", "auto"])
    def test_run_batch_matches_execute(self, engine, query_pictures, executor):
        queries = [Query.exact(picture, limit=5) for picture in query_pictures]
        serial = [engine.execute(query) for query in queries]
        batch = engine.run_batch(queries, workers=2, executor=executor, chunk_size=2)
        assert [result_key(r) for r in batch] == [result_key(r) for r in serial]

    def test_query_batch_matches_n_serial_queries(self, system, query_pictures):
        serial = [
            list(system.query(picture).limit(4).execute()) for picture in query_pictures
        ]
        batch = system.query_batch(
            [system.query(picture).limit(4) for picture in query_pictures]
        )
        assert [result_key(r) for r in batch] == [result_key(r) for r in serial]

    def test_parallel_query_batch_matches_serial(self, system, query_pictures):
        serial = [
            list(system.query(picture).limit(4).execute()) for picture in query_pictures
        ]
        batch = system.query_batch(
            [system.query(picture).limit(4) for picture in query_pictures], workers=3
        )
        assert [result_key(r) for r in batch] == [result_key(r) for r in serial]

    def test_invariant_batch_matches_serial(self, system, query_pictures):
        serial = [
            list(system.query(picture).invariant().limit(4).execute())
            for picture in query_pictures
        ]
        batch = system.query_batch(
            [system.query(picture).invariant().limit(4) for picture in query_pictures],
            workers=2,
        )
        assert [result_key(r) for r in batch] == [result_key(r) for r in serial]

    def test_tie_break_ordering_is_preserved(self, office):
        # Identical copies of one picture under different ids score equally;
        # ranking must fall back to the image id on both paths.
        system = RetrievalSystem.from_pictures(
            [office.renamed(f"copy-{index}") for index in range(6)]
        )
        serial = list(system.query(office).limit(None).execute())
        batch = system.query_batch([system.query(office).limit(None)])[0]
        assert [r.image_id for r in serial] == [f"copy-{index}" for index in range(6)]
        assert result_key(batch) == result_key(serial)

    def test_heterogeneous_limits_and_thresholds(self, system, query_pictures):
        queries = [
            Query.exact(query_pictures[0], limit=2),
            Query.exact(query_pictures[0], limit=None, minimum_score=0.5),
            Query.invariant(query_pictures[1], limit=3),
            Query(picture=query_pictures[2], use_filters=False),
        ]
        serial = [system._engine.execute(query) for query in queries]
        batch = system.query_batch(queries, workers=2, executor="thread")
        assert [result_key(r) for r in batch] == [result_key(r) for r in serial]

    def test_empty_batch(self, system):
        assert system.query_batch([]) == []


class TestDeduplicationAndCache:
    def test_duplicate_queries_evaluated_once(self, engine, query_pictures):
        queries = [Query.exact(picture, limit=5) for picture in query_pictures]
        engine.run_batch(queries)
        report = engine.last_batch_report
        assert report.total_queries == 5
        assert report.unique_evaluations == 3
        assert report.deduplicated_queries == 2

    def test_second_batch_is_served_from_cache(self, engine, query_pictures):
        queries = [Query.exact(picture, limit=5) for picture in query_pictures]
        first = engine.run_batch(queries)
        assert engine.last_batch_report.scored > 0
        second = engine.run_batch(queries)
        report = engine.last_batch_report
        assert report.scored == 0
        assert report.cache_hits == report.candidates_considered > 0
        assert report.cache_hit_rate == 1.0
        assert [result_key(r) for r in second] == [result_key(r) for r in first]

    def test_use_cache_false_bypasses_cache(self, engine, query_pictures):
        queries = [Query.exact(picture) for picture in query_pictures]
        engine.run_batch(queries)
        engine.run_batch(queries, use_cache=False)
        report = engine.last_batch_report
        assert report.cache_hits == 0
        assert report.scored == report.candidates_considered

    def test_cache_invalidated_on_remove(self, scene_collection, office):
        system = RetrievalSystem.from_pictures(scene_collection)
        before = system.query_batch([system.query(office).limit(None)])[0]
        assert any(r.image_id == "office-001" for r in before)
        system.remove_picture("office-001")
        after = system.query_batch([system.query(office).limit(None)])[0]
        assert not any(r.image_id == "office-001" for r in after)
        fresh = list(system.query(office).limit(None).execute())
        assert result_key(after) == result_key(fresh)

    def test_cache_invalidated_on_object_update(self, scene_collection, office):
        system = RetrievalSystem.from_pictures(scene_collection)
        stale = system.query_batch([system.query(office).limit(None)])[0]
        # Editing a stored image changes its BE-string; the cached score for
        # that image must be dropped, not replayed.
        system.add_object("office-001", "aquarium", Rectangle(1.0, 1.0, 3.0, 3.0))
        system.remove_object("office-000", "phone")
        updated = system.query_batch([system.query(office).limit(None)])[0]
        fresh = list(system.query(office).limit(None).execute())
        assert result_key(updated) == result_key(fresh)
        assert result_key(updated) != result_key(stale)

    def test_cache_invalidated_on_add_picture(self, scene_collection, office):
        system = RetrievalSystem.from_pictures(scene_collection)
        system.query_batch([system.query(office)])
        system.add_picture(office.renamed("office-twin"))
        results = system.query_batch([system.query(office).limit(None)])[0]
        assert any(r.image_id == "office-twin" for r in results)
        fresh = list(system.query(office).limit(None).execute())
        assert result_key(results) == result_key(fresh)


class TestScoreCache:
    def test_lru_eviction(self, office, traffic, landscape):
        system = RetrievalSystem.from_pictures([office, traffic, landscape])
        engine = system._engine
        engine.score_cache = ScoreCache(capacity=2)
        system.query_batch([system.query(office).execution(shortlist=False)])  # 3 candidates > capacity 2
        stats = engine.score_cache.statistics
        assert stats.size == 2
        assert stats.evictions >= 1

    def test_invalidate_unknown_image_is_noop(self):
        cache = ScoreCache()
        assert cache.invalidate_image("missing") == 0

    def test_statistics_and_clear(self, office, traffic):
        system = RetrievalSystem.from_pictures([office, traffic])
        system.query_batch([system.query(office)])
        cache = system._engine.score_cache
        assert len(cache) > 0
        assert cache.statistics.hit_rate == 0.0
        system.query_batch([system.query(office)])
        assert cache.statistics.hits > 0
        cache.clear()
        assert len(cache) == 0

    def test_query_key_ignores_picture_name(self, office):
        from repro.core.construct import encode_picture
        from repro.core.similarity import DEFAULT_POLICY
        from repro.core.transforms import Transformation

        key_a = query_score_key(
            encode_picture(office), DEFAULT_POLICY, (Transformation.IDENTITY,)
        )
        key_b = query_score_key(
            encode_picture(office.renamed("other-name")),
            DEFAULT_POLICY,
            (Transformation.IDENTITY,),
        )
        assert key_a == key_b

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ScoreCache(capacity=0)


class TestOptionsValidation:
    def test_invalid_executor_rejected(self):
        with pytest.raises(ValueError):
            BatchOptions(executor="fibers")

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            BatchOptions(workers=0)

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            BatchOptions(chunk_size=0)

    def test_single_worker_falls_back_to_serial(self, engine, office):
        batch = BatchQueryEngine(engine=engine, options=BatchOptions(workers=1, executor="thread"))
        batch.run([Query.exact(office)])
        assert batch.last_report.executor == "serial"

    def test_auto_uses_threads_for_large_workloads(self, engine, scene_collection):
        queries = [
            Query.exact(picture.renamed(f"q-{index}"), use_filters=False)
            for index, picture in enumerate(scene_collection * 5)
        ]
        batch = BatchQueryEngine(
            engine=engine, options=BatchOptions(workers=2, executor="auto")
        )
        batch.run(queries)
        assert batch.last_report.executor == "thread"


class TestStalePostings:
    def test_removed_label_cannot_inflate_batch_shortlists(self):
        # Regression companion to tests/index/test_inverted.py: once the only
        # image holding a label is gone, a batch query for that label must not
        # shortlist (and pay LCS scoring for) anything.
        lamp = SymbolicPicture.build(
            width=10, height=10, objects=[("lamp", Rectangle(1, 1, 3, 3))], name="lamp-only"
        )
        desk = SymbolicPicture.build(
            width=10, height=10, objects=[("desk", Rectangle(2, 2, 6, 4))], name="desk-only"
        )
        system = RetrievalSystem.from_pictures([lamp, desk])
        system.remove_picture("lamp-only")
        results = system.query_batch([system.query(lamp).limit(None)])[0]
        assert results == []
        assert system.last_batch_report.candidates_considered == 0


class TestBatchShortlistPruning:
    def test_report_counts_pruned_candidates_and_results_match_serial(self, engine):
        queries = [
            Query(
                picture=record.picture,
                minimum_score=0.95,
                use_cache=False,
            )
            for record in list(engine.database)[:4]
        ]
        batch = BatchQueryEngine(engine=engine)
        batched, report = batch.run_detailed(queries)
        assert report.shortlist_pruned > 0
        assert "pruned" in report.describe()
        for query, results in zip(queries, batched):
            serial = engine.execute(query)
            assert [(r.rank, r.image_id, r.score) for r in results] == [
                (r.rank, r.image_id, r.score) for r in serial
            ]

    def test_same_content_different_min_score_are_separate_groups(self, engine):
        picture = next(iter(engine.database)).picture
        relaxed = Query(picture=picture, minimum_score=0.0, limit=None)
        strict = Query(picture=picture, minimum_score=0.9, limit=None)
        batch = BatchQueryEngine(engine=engine)
        batched, report = batch.run_detailed([relaxed, strict])
        # One shortlist per distinct min_score: the strict query must not
        # inherit the relaxed query's (unpruned) candidate list or vice versa.
        assert report.unique_evaluations == 2
        assert [(r.rank, r.image_id, r.score) for r in batched[0]] == [
            (r.rank, r.image_id, r.score) for r in engine.execute(relaxed)
        ]
        assert [(r.rank, r.image_id, r.score) for r in batched[1]] == [
            (r.rank, r.image_id, r.score) for r in engine.execute(strict)
        ]
