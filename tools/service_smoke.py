#!/usr/bin/env python3
"""End-to-end smoke test of the ``repro serve`` daemon (the CI service job).

Boots a real ``repro serve`` subprocess against a freshly built demo
database, drives every endpoint with the stdlib client -- search, batch,
insert, delete, ``/healthz``, ``/stats`` -- and fails (non-zero exit) on any
non-2xx response or any ranking that is not byte-identical to the in-process
engine executing the same query.  Standard library only; runs against the
installed package or a ``PYTHONPATH=src`` checkout.

Usage::

    python tools/service_smoke.py [--keep-temp]
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if (REPO_ROOT / "src" / "repro").is_dir():  # checkout fallback; no-op when installed
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.datasets.scenes import landscape_scene, office_scene, traffic_scene  # noqa: E402
from repro.retrieval.system import RetrievalSystem  # noqa: E402
from repro.service.client import ServiceClient, ServiceError  # noqa: E402

_CHECKS: list = []


def check(name: str, condition: bool, detail: str = "") -> None:
    """Record one smoke assertion and echo its outcome."""
    _CHECKS.append((name, condition))
    status = "ok" if condition else "FAIL"
    suffix = f" -- {detail}" if detail and not condition else ""
    print(f"[{status}] {name}{suffix}", flush=True)


def pictures():
    return (
        [office_scene(variant) for variant in range(3)]
        + [traffic_scene(variant) for variant in range(3)]
        + [landscape_scene(variant) for variant in range(3)]
    )


def expected_dicts(reference: RetrievalSystem, scene=None, **kwargs):
    """The in-process ranking the daemon must reproduce byte for byte."""
    builder = reference.query(scene) if scene is not None else reference.query()
    if kwargs.get("identifiers"):
        builder.partial(kwargs["identifiers"])
    builder.invariant(kwargs.get("invariant", False))
    if kwargs.get("where"):
        builder.where(kwargs["where"])
    builder.limit(kwargs.get("limit", 10))
    builder.min_score(kwargs.get("min_score", 0.0))
    return builder.execute().to_dicts()


def subprocess_environment() -> dict:
    """The child environment: prepend the checkout's src/ when present."""
    environment = dict(os.environ)
    source = REPO_ROOT / "src"
    if (source / "repro").is_dir():
        existing = environment.get("PYTHONPATH")
        environment["PYTHONPATH"] = (
            f"{source}{os.pathsep}{existing}" if existing else str(source)
        )
    return environment


def start_server(database: Path) -> "tuple[subprocess.Popen, ServiceClient]":
    """Launch ``repro serve`` on an ephemeral port and wait for health."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", str(database), "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=subprocess_environment(),
    )
    assert process.stdout is not None
    line = process.stdout.readline()
    match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
    if not match:
        process.kill()
        stderr = process.stderr.read() if process.stderr is not None else ""
        raise RuntimeError(f"serve did not report its address: {line!r} {stderr.strip()}")
    client = ServiceClient(port=int(match.group(1)))
    client.wait_until_healthy(timeout=15)
    return process, client


def drive(client: ServiceClient, reference: RetrievalSystem, database: Path) -> None:
    """Exercise every endpoint, comparing against the in-process engine."""
    scenes = pictures()

    body = client.health()
    check("healthz answers ok", body.get("status") == "ok" and body.get("images") == len(scenes))

    # --- /search across the whole QuerySpec surface -------------------
    probes = [
        ("exact search", dict(scene=scenes[0])),
        ("invariant search", dict(scene=scenes[3], invariant=True)),
        ("partial search", dict(scene=scenes[0], identifiers=scenes[0].identifiers[:2])),
        ("predicate search", dict(where="monitor above desk")),
        ("combined search", dict(scene=scenes[0], where="monitor above desk")),
        ("min-score cut", dict(scene=scenes[1], min_score=0.3, limit=None)),
    ]
    for name, kwargs in probes:
        served = client.search(**kwargs)
        expected = expected_dicts(reference, **kwargs)
        check(f"{name} matches the in-process engine", served["results"] == expected)

    paged = client.search(scene=scenes[0], limit=None, page=1, page_size=2)
    full = expected_dicts(reference, scene=scenes[0], limit=None)
    check(
        "pagination windows the full ranking",
        paged["results"] == full[:2] and paged["total"] == len(full),
    )

    # --- /batch -------------------------------------------------------
    batch_scenes = [scenes[0], scenes[4], scenes[0]]
    served = client.batch(batch_scenes, workers=2)
    expected = [expected_dicts(reference, scene=scene) for scene in batch_scenes]
    check("batch matches per-query serial rankings", served["results"] == expected)

    # --- mutations with write-back persistence ------------------------
    fresh = office_scene(9).renamed("smoke-fresh")
    created = client.images.add(fresh)
    reference.add_picture(fresh)
    check("insert returns the stored id", created.get("image_id") == "smoke-fresh")
    served = client.search(scene=fresh, limit=3)
    check(
        "post-insert rankings match (cache invalidated)",
        served["results"] == expected_dicts(reference, scene=fresh, limit=3),
    )
    reloaded = RetrievalSystem.from_file(database)
    check("insert persisted to disk", "smoke-fresh" in reloaded.image_ids)

    removed = client.images.delete("smoke-fresh")
    reference.remove_picture("smoke-fresh")
    check("delete returns the removed id", removed.get("removed") == "smoke-fresh")
    reloaded = RetrievalSystem.from_file(database)
    check("delete persisted to disk", "smoke-fresh" not in reloaded.image_ids)

    try:
        client.images.delete("smoke-fresh")
        check("deleting a missing image is a 404", False)
    except ServiceError as error:
        check("deleting a missing image is a 404", error.status == 404)

    served = client.search(scene=scenes[0])
    check(
        "post-delete rankings match the quiesced engine",
        served["results"] == expected_dicts(reference, scene=scenes[0]),
    )

    # --- /stats -------------------------------------------------------
    stats = client.stats()
    check(
        "stats reports request counts and latency percentiles",
        stats["requests"].get("POST /search", 0) >= len(probes)
        and stats["latency_ms"]["count"] > 0
        and stats["latency_ms"]["p50"] <= stats["latency_ms"]["p95"]
        and 0.0 <= stats["cache"]["hit_rate"] <= 1.0,
    )

    # --- repro ping (the CLI client path) -----------------------------
    completed = subprocess.run(
        [sys.executable, "-m", "repro.cli", "ping", client.url],
        capture_output=True,
        text=True,
        check=False,
        env=subprocess_environment(),
    )
    check(
        "repro ping exits 0 against the live daemon",
        completed.returncode == 0 and "round-trip" in completed.stdout,
        detail=completed.stderr.strip(),
    )


def main() -> int:
    """Run the smoke sequence; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--keep-temp", action="store_true", help="keep the temp database")
    arguments = parser.parse_args()

    scratch = Path(tempfile.mkdtemp(prefix="repro-service-smoke-"))
    database = scratch / "smoke-db.json"
    system = RetrievalSystem.from_pictures(pictures())
    system.save(database)
    reference = RetrievalSystem.from_file(database)
    print(f"database: {database} ({len(system)} images)", flush=True)

    process = None
    try:
        process, client = start_server(database)
        print(f"daemon: pid {process.pid} at {client.url}", flush=True)
        drive(client, reference, database)
    except (ServiceError, RuntimeError, OSError) as error:
        check("smoke sequence completed", False, detail=str(error))
    finally:
        if process is not None:
            process.terminate()
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
            if process.stderr is not None:
                stderr = process.stderr.read().strip()
                if stderr:
                    print(f"--- daemon stderr ---\n{stderr}", flush=True)
        if not arguments.keep_temp:
            for path in sorted(scratch.rglob("*"), reverse=True):
                path.unlink() if path.is_file() else path.rmdir()
            scratch.rmdir()

    failed = [name for name, passed in _CHECKS if not passed]
    print(
        f"\nservice smoke: {len(_CHECKS) - len(failed)}/{len(_CHECKS)} checks passed",
        flush=True,
    )
    if failed:
        print("failed: " + "; ".join(failed), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
