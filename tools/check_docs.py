#!/usr/bin/env python3
"""Docs build/cross-reference check (stdlib only; the "docs build" CI step).

Validates every Markdown page under ``docs/`` plus ``README.md``:

* every relative link target exists (files and directories),
* every anchor (``page.md#section`` or ``#section``) matches a heading in the
  target page, using GitHub's slugification rules,
* fenced code blocks are ignored (no false links from sample code),
* every page reachable from ``docs/index.md`` — an unlinked page is a broken
  table of contents and fails the build.

Exit status is non-zero with one line per problem, so CI fails on any broken
cross-reference.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, List, Set, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"

#: Markdown link syntax ``[text](target)`` (images share the syntax).
_LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING_PATTERN = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_FENCE_PATTERN = re.compile(r"^\s*(```|~~~)")
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str) -> str:
    """Slugify a heading the way GitHub's anchor generator does.

    Returns:
        The anchor id: lowercased, punctuation stripped, spaces as hyphens.
    """
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # inline code keeps its text
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links keep their text
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def strip_fences(text: str) -> List[Tuple[int, str]]:
    """Lines of ``text`` outside fenced code blocks, with 1-based numbers."""
    lines = []
    in_fence = False
    fence_marker = ""
    for number, line in enumerate(text.splitlines(), start=1):
        fence = _FENCE_PATTERN.match(line)
        if fence:
            if not in_fence:
                in_fence, fence_marker = True, fence.group(1)
            elif fence.group(1) == fence_marker:
                in_fence = False
            continue
        if not in_fence:
            lines.append((number, line))
    return lines


def collect_anchors(path: Path) -> Set[str]:
    """All heading anchors of one Markdown file (GitHub slugs, deduplicated)."""
    anchors: Set[str] = set()
    counts: Dict[str, int] = {}
    for _, line in strip_fences(path.read_text(encoding="utf-8")):
        heading = _HEADING_PATTERN.match(line)
        if not heading:
            continue
        slug = github_slug(heading.group(2))
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        anchors.add(slug if seen == 0 else f"{slug}-{seen}")
    return anchors


def check_file(path: Path, anchor_cache: Dict[Path, Set[str]]) -> List[str]:
    """All broken-reference messages for one Markdown file."""
    problems: List[str] = []
    for number, line in strip_fences(path.read_text(encoding="utf-8")):
        for match in _LINK_PATTERN.finditer(line):
            target = match.group(1)
            if target.startswith(_EXTERNAL_PREFIXES) or target.startswith("<"):
                continue
            file_part, _, anchor = target.partition("#")
            if file_part:
                resolved = (path.parent / file_part).resolve()
                if not resolved.is_relative_to(REPO_ROOT):
                    continue  # site-relative GitHub URL (e.g. the CI badge)
                if not resolved.exists():
                    problems.append(
                        f"{path.relative_to(REPO_ROOT)}:{number}: broken link "
                        f"target {target!r} ({file_part} does not exist)"
                    )
                    continue
            else:
                resolved = path.resolve()
            if anchor:
                if resolved.suffix.lower() not in (".md", ".markdown"):
                    continue
                anchors = anchor_cache.setdefault(resolved, collect_anchors(resolved))
                if anchor not in anchors:
                    problems.append(
                        f"{path.relative_to(REPO_ROOT)}:{number}: broken anchor "
                        f"{target!r} (no heading slugs to {anchor!r} in "
                        f"{resolved.relative_to(REPO_ROOT)})"
                    )
    return problems


def check_reachability(pages: List[Path]) -> List[str]:
    """Every docs page must be linked from docs/index.md (directly or not)."""
    index = DOCS_DIR / "index.md"
    if not index.exists():
        return ["docs/index.md is missing"]
    reachable = {index.resolve()}
    frontier = [index]
    while frontier:
        page = frontier.pop()
        for _, line in strip_fences(page.read_text(encoding="utf-8")):
            for match in _LINK_PATTERN.finditer(line):
                file_part = match.group(1).partition("#")[0]
                if not file_part or file_part.startswith(_EXTERNAL_PREFIXES):
                    continue
                resolved = (page.parent / file_part).resolve()
                if (
                    resolved.suffix.lower() == ".md"
                    and resolved.exists()
                    and resolved not in reachable
                ):
                    reachable.add(resolved)
                    frontier.append(resolved)
    return [
        f"{page.relative_to(REPO_ROOT)}: not reachable from docs/index.md"
        for page in pages
        if page.resolve() not in reachable and page.parent == DOCS_DIR
    ]


def main() -> int:
    """Check all docs pages and the README; returns a process exit code."""
    pages = sorted(DOCS_DIR.rglob("*.md")) if DOCS_DIR.exists() else []
    readme = REPO_ROOT / "README.md"
    targets = pages + ([readme] if readme.exists() else [])
    if not targets:
        print("no documentation files found", file=sys.stderr)
        return 1
    anchor_cache: Dict[Path, Set[str]] = {}
    problems: List[str] = []
    for path in targets:
        problems.extend(check_file(path, anchor_cache))
    problems.extend(check_reachability(pages))
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"\ndocs check FAILED: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(f"docs check OK: {len(targets)} file(s), no broken cross-references")
    return 0


if __name__ == "__main__":
    sys.exit(main())
