#!/usr/bin/env python3
"""Fault-injection harness: kill -9 a live ``repro serve --wal`` daemon.

The crash-safety proof of the durability layer (``docs/durability.md``) is
empirical: this driver repeatedly boots a real ``repro serve --wal``
subprocess on a copy of a seed database, streams mutations at it over HTTP,
and SIGKILLs the process at a randomized point mid-stream — mid-POST,
between requests, or mid-compaction (a small ``--wal-compact-every`` keeps
the background compactor busy).  After every kill it asserts the two
durability guarantees:

1. **No acknowledged write is lost.**  The recovered directory (snapshot +
   write-ahead-log replay) contains every mutation the daemon acknowledged
   with a 2xx before dying.  The recovered state must be exactly the seed
   plus a *prefix* of the mutation schedule — the acknowledged prefix, plus
   at most the single in-flight mutation whose log record hit the disk
   before its response hit the socket.
2. **Rankings are byte-identical to an uninterrupted run.**  A restarted
   daemon serving the recovered directory must answer probe queries with
   exactly the JSON an in-process engine produces after applying the same
   surviving prefix without any crash.

With ``--replica`` the harness instead drives a *primary + replica* pair on
the same durable directory (``docs/replication.md``) and SIGKILLs the
primary, the replica, or both at random points — mid-append, mid-compaction
or mid-catch-up.  After recovery the (restarted) replica must converge to
the surviving acknowledged prefix and answer probe queries **byte-identical**
to the primary's own post-recovery rankings, with zero acknowledged writes
lost.

Usable as a library (``tests/service/test_fault_injection.py``) and as the
CI ``fault-injection`` job's entry point::

    python tools/faultinject.py --trials 20 [--seed 7] [--compact-every 4]
    python tools/faultinject.py --trials 20 --replica

Standard library only; exits non-zero if any trial violates a guarantee.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parents[1]
if (REPO_ROOT / "src" / "repro").is_dir():  # checkout fallback; no-op when installed
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.datasets.synthetic import random_pictures  # noqa: E402
from repro.index.backends import durable_wal_state  # noqa: E402
from repro.iconic.picture import SymbolicPicture  # noqa: E402
from repro.retrieval.system import RetrievalSystem  # noqa: E402
from repro.service.client import ServiceClient, ServiceError  # noqa: E402

#: Images in the seed database every trial starts from.
SEED_IMAGES = 18
#: Mutations the driver streams per trial (adds and deletes).
MUTATIONS_PER_TRIAL = 10
#: Probe queries whose post-recovery rankings must be byte-identical.
PROBE_QUERIES = 3


@dataclass
class Mutation:
    """One scheduled mutation: an add (with its scene) or a delete."""

    op: str  # "add" | "delete"
    image_id: str
    picture: Optional[SymbolicPicture] = None


@dataclass
class TrialResult:
    """Outcome of one kill -9 trial."""

    trial: int
    kill_mode: str
    acked: int
    survived: int
    recovery_seconds: float
    failures: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """Whether both durability guarantees held."""
        return not self.failures


def subprocess_environment() -> dict:
    """The child environment: prepend the checkout's src/ when present."""
    environment = dict(os.environ)
    source = REPO_ROOT / "src"
    if (source / "repro").is_dir():
        existing = environment.get("PYTHONPATH")
        environment["PYTHONPATH"] = (
            f"{source}{os.pathsep}{existing}" if existing else str(source)
        )
    return environment


def build_seed(directory: Path, *, images: int = SEED_IMAGES, seed: int = 11) -> Path:
    """Write the durable seed database every trial copies.

    Returns:
        The durable sharded directory created under ``directory``.
    """
    target = directory / "seed.shards"
    system = RetrievalSystem.from_pictures(
        random_pictures(images, seed=seed, name_prefix="seed")
    )
    system.save(target, durable=True, shard_count=8)
    return target


def mutation_schedule(rng: random.Random, *, trial: int) -> List[Mutation]:
    """The per-trial mutation stream: fresh adds mixed with seed deletes.

    Every mutation changes database membership (adds use fresh ids, deletes
    target distinct existing ids), so any on-disk state maps back to exactly
    one schedule prefix.
    """
    adds = random_pictures(
        MUTATIONS_PER_TRIAL, seed=1000 + trial, name_prefix=f"t{trial}-new"
    )
    deletable = [f"seed-{index:04d}" for index in range(SEED_IMAGES)]
    rng.shuffle(deletable)
    schedule: List[Mutation] = []
    for index in range(MUTATIONS_PER_TRIAL):
        if deletable and rng.random() < 0.3:
            schedule.append(Mutation("delete", deletable.pop()))
        else:
            picture = adds[index]
            schedule.append(Mutation("add", picture.name, picture))
    return schedule


class DaemonProcess:
    """A live ``repro`` daemon subprocess bound to an ephemeral port."""

    def __init__(self, argv: Sequence[str]) -> None:
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", *argv],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=subprocess_environment(),
        )
        assert self.process.stdout is not None
        line = self.process.stdout.readline()
        match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
        if not match:
            self.kill9()
            stderr = self.process.stderr.read() if self.process.stderr else ""
            raise RuntimeError(
                f"{argv[0]} did not report its address: {line!r} {stderr.strip()}"
            )
        self.client = ServiceClient(port=int(match.group(1)))
        self.client.wait_until_healthy(timeout=20)

    def kill9(self) -> None:
        """SIGKILL the daemon — no shutdown hooks, no flushes, no goodbyes."""
        try:
            self.process.send_signal(signal.SIGKILL)
        except ProcessLookupError:
            pass
        self.process.wait(timeout=10)

    def terminate(self) -> None:
        """Graceful stop (reference runs and restarted-verification servers)."""
        self.process.terminate()
        try:
            self.process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait(timeout=10)

    @property
    def alive(self) -> bool:
        """Whether the subprocess is still running."""
        return self.process.poll() is None


class ServerProcess(DaemonProcess):
    """A live ``repro serve --wal`` primary on an ephemeral port."""

    def __init__(self, database: Path, *, compact_every: int) -> None:
        super().__init__(
            [
                "serve",
                str(database),
                "--port",
                "0",
                "--wal",
                "--wal-compact-every",
                str(compact_every),
            ]
        )


class ReplicaProcess(DaemonProcess):
    """A live ``repro replica`` follower on an ephemeral port."""

    def __init__(self, database: Path, *, follow_interval: float = 0.02) -> None:
        super().__init__(
            [
                "replica",
                str(database),
                "--port",
                "0",
                "--follow-interval",
                str(follow_interval),
            ]
        )


def _apply(system: RetrievalSystem, mutation: Mutation) -> None:
    if mutation.op == "add":
        assert mutation.picture is not None
        system.add_picture(mutation.picture, mutation.image_id)
    else:
        system.remove_picture(mutation.image_id)


def _probe_payloads(trial: int) -> List[Dict[str, object]]:
    """The probe queries of one trial (seed scenes re-derived, not stored)."""
    probes = random_pictures(PROBE_QUERIES, seed=11, name_prefix="seed")
    return [{"scene": picture.to_dict(), "limit": 10} for picture in probes]


def _reference_results(
    seed_dir: Path, schedule: Sequence[Mutation], prefix: int, trial: int
) -> List[List[dict]]:
    """Rankings of an uninterrupted in-process run of the surviving prefix."""
    reference = RetrievalSystem.from_file(seed_dir, durable=True)
    for mutation in schedule[:prefix]:
        _apply(reference, mutation)
    results = []
    for payload in _probe_payloads(trial):
        scene = SymbolicPicture.from_dict(payload["scene"])
        results.append(reference.query(scene).limit(10).execute().to_dicts())
    return results


def _surviving_prefix(
    seed_dir: Path, schedule: Sequence[Mutation], recovered_ids: set
) -> Optional[int]:
    """Which schedule prefix the recovered id set corresponds to (or ``None``)."""
    state = {f"seed-{index:04d}" for index in range(SEED_IMAGES)}
    if recovered_ids == state:
        return 0
    for length, mutation in enumerate(schedule, start=1):
        if mutation.op == "add":
            state.add(mutation.image_id)
        else:
            state.discard(mutation.image_id)
        if recovered_ids == state:
            return length
    return None


def run_trial(
    trial: int,
    scratch: Path,
    seed_dir: Path,
    *,
    rng: random.Random,
    compact_every: int,
    kill_mode: str = "random",
) -> TrialResult:
    """One kill -9 trial: stream mutations, kill, recover, verify.

    ``kill_mode`` picks when the SIGKILL lands: ``"random"`` arms a timer at
    a random offset inside the mutation stream (so it can land mid-POST,
    mid-fsync or mid-compaction), ``"after-ack"`` kills synchronously right
    after a random acknowledgement, and ``"during-compaction"`` kills right
    after the acknowledgement that crosses the compaction threshold — while
    the background compactor is rewriting shards and truncating the log.
    """
    database = scratch / f"trial-{trial:03d}.shards"
    shutil.copytree(seed_dir, database)
    schedule = mutation_schedule(rng, trial=trial)
    failures: List[str] = []

    server = ServerProcess(database, compact_every=compact_every)
    acked = 0
    killer: Optional[threading.Timer] = None
    if kill_mode == "random":
        # A detached killer: the SIGKILL lands at a uniformly random point
        # inside the stream — mid-POST, mid-fsync, or between requests.
        killer = threading.Timer(rng.uniform(0.0, 0.08), server.kill9)
        killer.start()
    kill_after = rng.randrange(1, len(schedule)) if kill_mode != "random" else None
    try:
        for index, mutation in enumerate(schedule):
            try:
                if mutation.op == "add":
                    server.client.images.add(mutation.picture, mutation.image_id)
                else:
                    server.client.images.delete(mutation.image_id)
                acked += 1
            except (ServiceError, OSError) as error:
                status = getattr(error, "status", None)
                if status is not None and status < 500:
                    failures.append(f"mutation {index} rejected with {status}: {error}")
                # A transport error means the kill landed mid-request: the
                # mutation is unacknowledged and the stream ends here.
                break
            if kill_mode == "during-compaction" and acked == compact_every:
                time.sleep(rng.uniform(0.0, 0.01))  # land inside the rewrite
                server.kill9()
                break
            if kill_mode == "after-ack" and acked == kill_after:
                server.kill9()
                break
        else:
            # Stream completed before the timer fired; kill at its end.
            server.kill9()
    finally:
        if killer is not None:
            killer.cancel()
        if server.process.poll() is None:
            server.kill9()

    # ------------------------------------------------------------------
    # Recovery: load the crashed directory (snapshot + WAL replay).
    # ------------------------------------------------------------------
    recovery_started = time.perf_counter()
    recovered = RetrievalSystem.from_file(database, durable=True)
    recovery_seconds = time.perf_counter() - recovery_started
    recovered_ids = set(recovered.image_ids)

    prefix = _surviving_prefix(seed_dir, schedule, recovered_ids)
    if prefix is None:
        failures.append(
            f"recovered state matches no schedule prefix "
            f"(acked={acked}, {len(recovered_ids)} images)"
        )
        prefix = acked  # best effort so the ranking check still reports
    elif prefix < acked:
        failures.append(
            f"acknowledged write lost: {acked} acked but only the "
            f"first {prefix} mutations survived"
        )
    elif prefix > acked + 1:
        failures.append(
            f"impossible recovery: {prefix} mutations survived with only "
            f"{acked} acked (at most one in-flight record may land)"
        )

    # ------------------------------------------------------------------
    # Restart a real daemon on the recovered directory; rankings must be
    # byte-identical to an uninterrupted in-process run of the same prefix.
    # ------------------------------------------------------------------
    expected = _reference_results(seed_dir, schedule, prefix, trial)
    restarted = ServerProcess(database, compact_every=compact_every)
    try:
        for number, (payload, reference) in enumerate(zip(_probe_payloads(trial), expected)):
            served = restarted.client.request("POST", "/search", payload)["results"]
            if json.dumps(served, sort_keys=True) != json.dumps(reference, sort_keys=True):
                failures.append(f"probe {number} ranking diverged after recovery")
        health = restarted.client.health()
        if health.get("images") != len(recovered_ids):
            failures.append(
                f"restarted daemon serves {health.get('images')} images, "
                f"recovery loaded {len(recovered_ids)}"
            )
    except (ServiceError, OSError, RuntimeError) as error:
        failures.append(f"restarted daemon failed: {error}")
    finally:
        restarted.terminate()

    return TrialResult(
        trial=trial,
        kill_mode=kill_mode,
        acked=acked,
        survived=prefix,
        recovery_seconds=recovery_seconds,
        failures=failures,
    )


def _wait_for_catch_up(
    client: ServiceClient, target_lsn: int, *, timeout: float = 30.0
) -> Optional[Dict[str, object]]:
    """Poll a replica's ``/stats`` until ``applied_lsn`` reaches ``target_lsn``.

    Returns:
        The converged ``/stats`` body, or ``None`` on timeout.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            stats = client.stats()
        except (ServiceError, OSError):
            time.sleep(0.05)
            continue
        if stats["replication"]["applied_lsn"] >= target_lsn:
            return stats
        time.sleep(0.02)
    return None


def run_replica_trial(
    trial: int,
    scratch: Path,
    seed_dir: Path,
    *,
    rng: random.Random,
    compact_every: int,
    kill_mode: str = "kill-replica",
) -> TrialResult:
    """One primary+replica kill -9 trial: stream, kill, recover, converge.

    ``kill_mode`` picks the victim(s): ``"kill-replica"`` SIGKILLs the
    follower mid-catch-up (the primary finishes the stream, and a restarted
    replica must converge to rankings byte-identical to the live primary's);
    ``"kill-primary"`` SIGKILLs the primary mid-append/mid-compaction (the
    surviving replica must converge to exactly the acknowledged prefix on
    disk); ``"kill-both"`` SIGKILLs both at independent random points and
    restarts the replica over the crashed directory.
    """
    database = scratch / f"replica-trial-{trial:03d}.shards"
    shutil.copytree(seed_dir, database)
    schedule = mutation_schedule(rng, trial=trial)
    failures: List[str] = []

    primary = ServerProcess(database, compact_every=compact_every)
    replica = ReplicaProcess(database)
    acked = 0
    killers: List[threading.Timer] = []
    if kill_mode in ("kill-replica", "kill-both"):
        killers.append(threading.Timer(rng.uniform(0.0, 0.08), replica.kill9))
    if kill_mode in ("kill-primary", "kill-both"):
        killers.append(threading.Timer(rng.uniform(0.0, 0.08), primary.kill9))
    for killer in killers:
        killer.start()
    try:
        for index, mutation in enumerate(schedule):
            try:
                if mutation.op == "add":
                    primary.client.images.add(mutation.picture, mutation.image_id)
                else:
                    primary.client.images.delete(mutation.image_id)
                acked += 1
            except (ServiceError, OSError) as error:
                status = getattr(error, "status", None)
                if status is not None and status < 500:
                    failures.append(f"mutation {index} rejected with {status}: {error}")
                break
    finally:
        for killer in killers:
            killer.cancel()
    # Land any kill the timer did not get to: the victim set is the mode's.
    if kill_mode in ("kill-replica", "kill-both") and replica.alive:
        replica.kill9()
    if kill_mode in ("kill-primary", "kill-both") and primary.alive:
        primary.kill9()

    try:
        if kill_mode == "kill-replica":
            # The primary survived the whole stream: a restarted replica
            # must catch up and mirror the *live* primary byte-for-byte.
            recovery_started = time.perf_counter()
            replica = ReplicaProcess(database)
            recovery_seconds = time.perf_counter() - recovery_started
            target_lsn = primary.client.stats()["durability"]["last_lsn"]
            prefix = acked
            stats = _wait_for_catch_up(replica.client, target_lsn)
            if stats is None:
                failures.append(f"replica never caught up to LSN {target_lsn}")
            else:
                for number, payload in enumerate(_probe_payloads(trial)):
                    served_primary = primary.client.request("POST", "/search", payload)
                    served_replica = replica.client.request("POST", "/search", payload)
                    if json.dumps(served_primary["results"], sort_keys=True) != json.dumps(
                        served_replica["results"], sort_keys=True
                    ):
                        failures.append(f"probe {number} differs between primary and replica")
                primary_images = primary.client.health()["images"]
                replica_images = replica.client.health()["images"]
                if primary_images != replica_images:
                    failures.append(
                        f"replica serves {replica_images} images, primary {primary_images}"
                    )
        else:
            # The primary is dead.  The directory holds the acknowledged
            # prefix; the (restarted, for kill-both) replica must converge
            # to exactly that state and rank like an uninterrupted run.
            recovery_started = time.perf_counter()
            if kill_mode == "kill-both":
                replica = ReplicaProcess(database)
            recovered = RetrievalSystem.from_file(database, durable=True)
            recovery_seconds = time.perf_counter() - recovery_started
            recovered_ids = set(recovered.image_ids)
            prefix = _surviving_prefix(seed_dir, schedule, recovered_ids)
            if prefix is None:
                failures.append(
                    f"recovered state matches no schedule prefix "
                    f"(acked={acked}, {len(recovered_ids)} images)"
                )
                prefix = acked
            elif prefix < acked:
                failures.append(
                    f"acknowledged write lost: {acked} acked but only the "
                    f"first {prefix} mutations survived"
                )
            elif prefix > acked + 1:
                failures.append(
                    f"impossible recovery: {prefix} mutations survived with only "
                    f"{acked} acked (at most one in-flight record may land)"
                )
            state = durable_wal_state(database)
            target_lsn = state["last_lsn"] if state else 0
            stats = _wait_for_catch_up(replica.client, target_lsn)
            if stats is None:
                failures.append(f"replica never caught up to LSN {target_lsn}")
            else:
                expected = _reference_results(seed_dir, schedule, prefix, trial)
                for number, (payload, reference) in enumerate(
                    zip(_probe_payloads(trial), expected)
                ):
                    served = replica.client.request("POST", "/search", payload)["results"]
                    if json.dumps(served, sort_keys=True) != json.dumps(
                        reference, sort_keys=True
                    ):
                        failures.append(
                            f"probe {number} ranking diverged from the recovered primary state"
                        )
                health = replica.client.health()
                if health.get("images") != len(recovered_ids):
                    failures.append(
                        f"replica serves {health.get('images')} images, "
                        f"recovery holds {len(recovered_ids)}"
                    )
    except (ServiceError, OSError, RuntimeError) as error:
        failures.append(f"replica verification failed: {error}")
        recovery_seconds = 0.0
        prefix = acked
    finally:
        if replica.alive:
            replica.terminate()
        if primary.alive:
            primary.terminate()

    return TrialResult(
        trial=trial,
        kill_mode=kill_mode,
        acked=acked,
        survived=prefix,
        recovery_seconds=recovery_seconds,
        failures=failures,
    )


def run_replica_trials(
    trials: int = 20,
    *,
    seed: int = 7,
    compact_every: int = 4,
    kill_modes: Sequence[str] = ("kill-replica", "kill-primary", "kill-both"),
    scratch: Optional[Path] = None,
    verbose: bool = True,
) -> List[TrialResult]:
    """Run the replica sweep; returns one :class:`TrialResult` per trial."""
    rng = random.Random(seed)
    owns_scratch = scratch is None
    scratch = scratch or Path(tempfile.mkdtemp(prefix="repro-faultinject-replica-"))
    results: List[TrialResult] = []
    try:
        seed_dir = build_seed(scratch)
        for trial in range(trials):
            kill_mode = kill_modes[trial % len(kill_modes)]
            result = run_replica_trial(
                trial,
                scratch,
                seed_dir,
                rng=rng,
                compact_every=compact_every,
                kill_mode=kill_mode,
            )
            results.append(result)
            if verbose:
                status = "ok " if result.passed else "FAIL"
                print(
                    f"[{status}] trial {trial:02d} ({kill_mode}): "
                    f"{result.acked} acked, {result.survived} survived, "
                    f"recovery {result.recovery_seconds * 1000:.1f}ms"
                    + ("" if result.passed else f" -- {'; '.join(result.failures)}"),
                    flush=True,
                )
    finally:
        if owns_scratch:
            shutil.rmtree(scratch, ignore_errors=True)
    return results


def run_trials(
    trials: int = 20,
    *,
    seed: int = 7,
    compact_every: int = 4,
    kill_modes: Sequence[str] = ("random", "after-ack", "during-compaction"),
    scratch: Optional[Path] = None,
    verbose: bool = True,
) -> List[TrialResult]:
    """Run the full harness; returns one :class:`TrialResult` per trial."""
    rng = random.Random(seed)
    owns_scratch = scratch is None
    scratch = scratch or Path(tempfile.mkdtemp(prefix="repro-faultinject-"))
    results: List[TrialResult] = []
    try:
        seed_dir = build_seed(scratch)
        for trial in range(trials):
            kill_mode = kill_modes[trial % len(kill_modes)]
            result = run_trial(
                trial,
                scratch,
                seed_dir,
                rng=rng,
                compact_every=compact_every,
                kill_mode=kill_mode,
            )
            results.append(result)
            if verbose:
                status = "ok " if result.passed else "FAIL"
                print(
                    f"[{status}] trial {trial:02d} ({kill_mode}): "
                    f"{result.acked} acked, {result.survived} survived, "
                    f"recovery {result.recovery_seconds * 1000:.1f}ms"
                    + ("" if result.passed else f" -- {'; '.join(result.failures)}"),
                    flush=True,
                )
    finally:
        if owns_scratch:
            shutil.rmtree(scratch, ignore_errors=True)
    return results


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trials", type=int, default=20, help="kill -9 trials (default 20)")
    parser.add_argument("--seed", type=int, default=7, help="randomization seed (default 7)")
    parser.add_argument(
        "--compact-every",
        type=int,
        default=4,
        help="WAL compaction threshold served with (small keeps the compactor busy)",
    )
    parser.add_argument(
        "--replica",
        action="store_true",
        help="drive a primary+replica pair and kill either/both instead",
    )
    arguments = parser.parse_args(argv)
    runner = run_replica_trials if arguments.replica else run_trials
    results = runner(
        arguments.trials, seed=arguments.seed, compact_every=arguments.compact_every
    )
    sweep = "replica fault injection" if arguments.replica else "fault injection"
    failed = [result for result in results if not result.passed]
    total_acked = sum(result.acked for result in results)
    print(
        f"\n{sweep}: {len(results) - len(failed)}/{len(results)} trials passed "
        f"({total_acked} acknowledged writes, zero lost)"
        if not failed
        else f"\n{sweep}: {len(failed)}/{len(results)} trials FAILED",
        flush=True,
    )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
