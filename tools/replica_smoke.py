#!/usr/bin/env python3
"""End-to-end smoke test of a primary + replica pair (the CI replica job).

Boots a real ``repro serve --wal`` primary and a real ``repro replica``
follower as subprocesses over the same durable directory, then walks the
whole replication story (``docs/replication.md``):

1. the replica warm-starts serving the seed and mirrors the primary's
   rankings byte-for-byte;
2. writes acknowledged by the primary appear on the replica within the
   follow interval (convergence is polled via the ``/stats`` replication
   block, not slept for);
3. mutations sent to the replica are refused with **403** naming the
   primary's address;
4. after the primary is stopped, ``POST /promote`` turns the replica into
   a writable durable primary that acknowledges writes with WAL LSNs.

Standard library only; exits non-zero on any failed check.

Usage::

    python tools/replica_smoke.py [--keep-temp]
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if (REPO_ROOT / "src" / "repro").is_dir():  # checkout fallback; no-op when installed
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.datasets.scenes import landscape_scene, office_scene, traffic_scene  # noqa: E402
from repro.retrieval.system import RetrievalSystem  # noqa: E402
from repro.service.client import ServiceClient, ServiceError  # noqa: E402

_CHECKS: list = []


def check(name: str, condition: bool, detail: str = "") -> None:
    """Record one smoke assertion and echo its outcome."""
    _CHECKS.append((name, condition))
    status = "ok" if condition else "FAIL"
    suffix = f" -- {detail}" if detail and not condition else ""
    print(f"[{status}] {name}{suffix}", flush=True)


def pictures():
    return (
        [office_scene(variant) for variant in range(3)]
        + [traffic_scene(variant) for variant in range(3)]
        + [landscape_scene(variant) for variant in range(3)]
    )


def subprocess_environment() -> dict:
    """The child environment: prepend the checkout's src/ when present."""
    environment = dict(os.environ)
    source = REPO_ROOT / "src"
    if (source / "repro").is_dir():
        existing = environment.get("PYTHONPATH")
        environment["PYTHONPATH"] = (
            f"{source}{os.pathsep}{existing}" if existing else str(source)
        )
    return environment


def start_daemon(argv: list) -> "tuple[subprocess.Popen, ServiceClient]":
    """Launch one ``repro`` daemon on an ephemeral port and wait for health."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *argv],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=subprocess_environment(),
    )
    assert process.stdout is not None
    line = process.stdout.readline()
    match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
    if not match:
        process.kill()
        stderr = process.stderr.read() if process.stderr is not None else ""
        raise RuntimeError(f"{argv[0]} did not report its address: {line!r} {stderr.strip()}")
    client = ServiceClient(port=int(match.group(1)))
    client.wait_until_healthy(timeout=15)
    return process, client


def stop(process: "subprocess.Popen | None", label: str) -> None:
    """Terminate one daemon, echoing any stderr it left behind."""
    if process is None:
        return
    process.terminate()
    try:
        process.wait(timeout=10)
    except subprocess.TimeoutExpired:
        process.kill()
    if process.stderr is not None:
        stderr = process.stderr.read().strip()
        if stderr:
            print(f"--- {label} stderr ---\n{stderr}", flush=True)


def wait_for_catch_up(client: ServiceClient, target_lsn: int, timeout: float = 20.0) -> bool:
    """Poll the replica's ``/stats`` until ``applied_lsn`` reaches the target."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            stats = client.stats()
        except (ServiceError, OSError):
            time.sleep(0.05)
            continue
        if stats["replication"]["applied_lsn"] >= target_lsn:
            return True
        time.sleep(0.02)
    return False


def same_rankings(primary: ServiceClient, replica: ServiceClient, scenes) -> bool:
    """Whether both daemons answer every probe byte-identically."""
    for scene in scenes:
        payload = {"scene": scene.to_dict(), "limit": None}
        first = primary.request("POST", "/search", payload)["results"]
        second = replica.request("POST", "/search", payload)["results"]
        if json.dumps(first, sort_keys=True) != json.dumps(second, sort_keys=True):
            return False
    return True


def drive(
    primary: ServiceClient, replica: ServiceClient, database: Path
) -> None:
    """The replication story up to (but not including) promotion."""
    scenes = pictures()
    probes = [scenes[0], scenes[4], scenes[7]]

    # --- roles and warm start -----------------------------------------
    check("primary reports itself healthy", primary.health().get("status") == "ok")
    replica_health = replica.health()
    check(
        "replica is healthy and self-identifies",
        replica_health.get("status") == "ok" and replica_health.get("role") == "replica",
    )
    check(
        "warm-started replica serves the full seed",
        replica_health.get("images") == len(scenes),
    )
    check("seed rankings are byte-identical", same_rankings(primary, replica, probes))

    # --- write on the primary, converge on the replica ----------------
    fresh = office_scene(9).renamed("smoke-replicated")
    created = primary.images.add(fresh)
    lsn = created.get("lsn")
    check("primary acknowledges the write with an LSN", lsn == 1, detail=str(created))
    check("replica catches up to the write", wait_for_catch_up(replica, lsn or 1))
    check(
        "replicated image is served by the replica",
        replica.health().get("images") == len(scenes) + 1,
    )
    check(
        "post-write rankings are byte-identical",
        same_rankings(primary, replica, probes + [fresh]),
    )

    deleted = primary.images.delete("smoke-replicated")
    check("primary acknowledges the delete", deleted.get("removed") == "smoke-replicated")
    check("replica catches up to the delete", wait_for_catch_up(replica, deleted.get("lsn", 2)))
    check(
        "post-delete rankings are byte-identical",
        same_rankings(primary, replica, probes),
    )

    # --- the write fence ----------------------------------------------
    try:
        replica.images.add(office_scene(8).renamed("fenced"))
        check("replica refuses writes with 403", False)
    except ServiceError as error:
        check(
            "replica refuses writes with 403",
            error.status == 403 and "primary" in str(error),
            detail=str(error),
        )
    try:
        replica.images.delete("office-000")
        check("replica refuses deletes with 403", False)
    except ServiceError as error:
        check("replica refuses deletes with 403", error.status == 403)

    # --- observability -------------------------------------------------
    stats = replica.stats()
    replication = stats.get("replication", {})
    check(
        "replica stats carry the replication block",
        stats.get("role") == "replica"
        and replication.get("applied_lsn") == replication.get("primary_lsn")
        and replication.get("lag_records") == 0
        and replication.get("records_applied", 0) >= 2,
        detail=json.dumps(replication),
    )
    primary_stats = primary.stats()
    check(
        "primary stats report WAL durability state",
        primary_stats["durability"].get("enabled") is True
        and primary_stats["durability"].get("last_lsn") == 2
        and primary_stats["durability"].get("wal_size_bytes", 0) > 0,
        detail=json.dumps(primary_stats.get("durability", {})),
    )


def drive_promotion(replica: ServiceClient, database: Path) -> None:
    """Fence the primary (already stopped by the caller), then promote."""
    summary = replica.admin.promote()
    check(
        "promote reports the new primary role",
        summary.get("role") == "primary",
        detail=json.dumps(summary),
    )
    check("promoted daemon self-identifies as primary", replica.health().get("role") == "primary")

    promoted_write = replica.images.add(traffic_scene(7).renamed("post-promote"))
    check(
        "promoted daemon acknowledges durable writes",
        promoted_write.get("lsn", 0) >= 3,
        detail=json.dumps(promoted_write),
    )
    served = replica.search(scene=traffic_scene(7), limit=3)
    check(
        "promoted daemon serves its own writes",
        any(row.get("image_id") == "post-promote" for row in served["results"]),
    )
    try:
        replica.admin.promote()
        check("second promote conflicts with 409", False)
    except ServiceError as error:
        check("second promote conflicts with 409", error.status == 409)


def verify_persistence(database: Path) -> None:
    """The promoted daemon's write must be on disk (snapshot + log replay)."""
    reloaded = RetrievalSystem.from_file(database, durable=True)
    check(
        "promoted write persisted durably",
        "post-promote" in reloaded.image_ids and "smoke-replicated" not in reloaded.image_ids,
    )


def main() -> int:
    """Run the smoke sequence; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--keep-temp", action="store_true", help="keep the temp database")
    arguments = parser.parse_args()

    scratch = Path(tempfile.mkdtemp(prefix="repro-replica-smoke-"))
    database = scratch / "smoke-db.shards"
    system = RetrievalSystem.from_pictures(pictures())
    system.save(database, durable=True)
    print(f"database: {database} ({len(system)} images)", flush=True)

    primary_process = None
    replica_process = None
    try:
        primary_process, primary = start_daemon(
            ["serve", str(database), "--port", "0", "--wal"]
        )
        print(f"primary: pid {primary_process.pid} at {primary.url}", flush=True)
        replica_process, replica = start_daemon(
            [
                "replica",
                str(database),
                "--port",
                "0",
                "--follow-interval",
                "0.05",
                "--primary",
                primary.url,
            ]
        )
        print(f"replica: pid {replica_process.pid} at {replica.url}", flush=True)

        drive(primary, replica, database)

        # Hand over: stop the primary first (exactly one writer at a time),
        # then promote the replica and prove it is a full durable primary.
        stop(primary_process, "primary")
        primary_process = None
        drive_promotion(replica, database)

        stop(replica_process, "replica (promoted)")
        replica_process = None
        verify_persistence(database)
    except (ServiceError, RuntimeError, OSError) as error:
        check("smoke sequence completed", False, detail=str(error))
    finally:
        stop(primary_process, "primary")
        stop(replica_process, "replica")
        if not arguments.keep_temp:
            for path in sorted(scratch.rglob("*"), reverse=True):
                path.unlink() if path.is_file() else path.rmdir()
            scratch.rmdir()

    failed = [name for name, passed in _CHECKS if not passed]
    print(
        f"\nreplica smoke: {len(_CHECKS) - len(failed)}/{len(_CHECKS)} checks passed",
        flush=True,
    )
    if failed:
        print("failed: " + "; ".join(failed), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
